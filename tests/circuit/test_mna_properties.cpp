/**
 * @file
 * Property tests on the MNA core: conservation laws and convergence
 * fallbacks that every valid solution must satisfy, checked over
 * randomized resistive networks and strongly nonlinear OTFT circuits.
 */

#include <gtest/gtest.h>

#include "cells/topologies.hpp"
#include "circuit/dc.hpp"
#include "device/pentacene.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace otft::circuit {
namespace {

/** Random connected resistor network with one source. */
Circuit
randomNetwork(std::uint64_t seed, int nodes, SourceId *source_out)
{
    Rng rng(seed);
    Circuit ckt;
    std::vector<NodeId> ids = {Circuit::ground};
    for (int i = 0; i < nodes; ++i) {
        const NodeId n = ckt.addNode("n" + std::to_string(i));
        // Connect each new node to a random earlier one (keeps the
        // network connected), plus one extra random edge.
        ckt.addResistor(n, ids[rng.uniformInt(ids.size())],
                        100.0 + rng.uniform() * 10000.0);
        ids.push_back(n);
    }
    for (int e = 0; e < nodes; ++e) {
        const NodeId a = ids[rng.uniformInt(ids.size())];
        const NodeId b = ids[rng.uniformInt(ids.size())];
        if (a != b)
            ckt.addResistor(a, b, 100.0 + rng.uniform() * 10000.0);
    }
    *source_out = ckt.addVoltageSource(ids[1], Circuit::ground,
                                       1.0 + rng.uniform() * 9.0);
    return ckt;
}

/** Power conservation: source power equals resistor dissipation. */
class EnergyConservation : public ::testing::TestWithParam<int>
{
};

TEST_P(EnergyConservation, SourcePowerMatchesDissipation)
{
    SourceId source = -1;
    Circuit ckt = randomNetwork(
        static_cast<std::uint64_t>(GetParam()), 3 + GetParam() % 8,
        &source);
    DcAnalysis dc(ckt);
    const auto sol = dc.operatingPoint();

    double dissipated = 0.0;
    for (const auto &r : ckt.resistors()) {
        const double v = dc.nodeVoltage(sol, r.a) -
                         dc.nodeVoltage(sol, r.b);
        dissipated += v * v / r.resistance;
    }
    EXPECT_NEAR(dc.totalSourcePower(sol), dissipated,
                1e-9 + 1e-6 * dissipated);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnergyConservation,
                         ::testing::Range(1, 13));

TEST(MnaProperties, KclAtEveryInverterNode)
{
    // For the pseudo-E inverter operating point, the currents into
    // every internal node must sum to ~zero (checked through the
    // device models directly).
    cells::CellFactory factory;
    auto cell = factory.inverter(cells::InverterKind::PseudoE);
    cell.ckt.setSourceWave(cell.inputSources[0],
                           Pwl::constant(2.5));
    DcAnalysis dc(cell.ckt);
    const auto sol = dc.operatingPoint();

    std::vector<double> node_current(cell.ckt.numNodes(), 0.0);
    for (const auto &fet : cell.ckt.fets()) {
        const double vgs = dc.nodeVoltage(sol, fet.gate) -
                           dc.nodeVoltage(sol, fet.source);
        const double vds = dc.nodeVoltage(sol, fet.drain) -
                           dc.nodeVoltage(sol, fet.source);
        const double id = fet.model->drainCurrent(vgs, vds);
        node_current[static_cast<std::size_t>(fet.drain)] += id;
        node_current[static_cast<std::size_t>(fet.source)] -= id;
    }
    // Internal nodes (not rails, not driven): X and OUT.
    // The output node of the inverter:
    const double residual =
        node_current[static_cast<std::size_t>(cell.out)];
    EXPECT_NEAR(residual, 0.0, 1e-9);
}

TEST(MnaProperties, GminSteppingRescuesStiffCircuit)
{
    // A 10x-mobility device bank that defeats plain Newton and plain
    // source stepping must still converge through the gmin fallback
    // (regression test for the DNTT library characterization).
    device::Level61Params strong;
    strong.u0 *= 10.0;
    cells::CellFactory factory(strong, cells::CellSizing{},
                               cells::SupplyConfig{});
    auto cell = factory.dff();
    for (std::size_t i = 0; i < cell.inputSources.size(); ++i)
        cell.ckt.setSourceWave(cell.inputSources[i],
                               Pwl::constant(5.0));
    DcAnalysis dc(cell.ckt);
    EXPECT_NO_THROW({
        const auto sol = dc.operatingPoint();
        (void)sol;
    });
}

TEST(MnaProperties, SweepMatchesPointSolves)
{
    // Warm-started sweep solutions must agree with independent cold
    // solves at the same bias.
    cells::CellFactory factory;
    auto cell = factory.inverter(cells::InverterKind::PseudoE);
    DcAnalysis dc(cell.ckt);
    const std::vector<double> biases = {0.0, 1.0, 2.5, 4.0, 5.0};
    const auto sweep = dc.sweepSource(cell.inputSources[0], biases);
    for (std::size_t i = 0; i < biases.size(); ++i) {
        cell.ckt.setSourceWave(cell.inputSources[0],
                               Pwl::constant(biases[i]));
        DcAnalysis cold(cell.ckt);
        const auto point = cold.operatingPoint();
        EXPECT_NEAR(dc.nodeVoltage(sweep.solutions[i], cell.out),
                    cold.nodeVoltage(point, cell.out), 1e-4)
            << "bias " << biases[i];
    }
}

} // namespace
} // namespace otft::circuit
