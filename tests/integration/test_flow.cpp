/**
 * @file
 * Integration tests over the full paper flow (Fig. 10): device
 * measurement -> model fit -> cells -> NLDM library -> synthesis ->
 * STA -> architecture, plus the headline cross-technology claims.
 *
 * The organic library is characterized once on a reduced grid and
 * shared across the suite.
 */

#include <gtest/gtest.h>

#include "core/explorer.hpp"
#include "device/extraction.hpp"
#include "device/fitting.hpp"
#include "device/measurement.hpp"
#include "device/pentacene.hpp"
#include "liberty/characterizer.hpp"
#include "liberty/silicon.hpp"
#include "netlist/bufferize.hpp"
#include "netlist/generators.hpp"
#include "sta/pipeline.hpp"
#include "util/logging.hpp"
#include "util/stats_registry.hpp"

namespace otft {
namespace {

class FullFlow : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        setQuiet(true);
        liberty::CharacterizerConfig config;
        config.slewAxis = {4e-6, 64e-6};
        config.loadMultipliers = {0.5, 6.0};
        organic = new liberty::CellLibrary(
            liberty::makeOrganicLibrary(config));
        silicon = new liberty::CellLibrary(
            liberty::makeSiliconLibrary());
    }

    static void
    TearDownTestSuite()
    {
        delete organic;
        delete silicon;
        organic = nullptr;
        silicon = nullptr;
    }

    static liberty::CellLibrary *organic;
    static liberty::CellLibrary *silicon;
};

liberty::CellLibrary *FullFlow::organic = nullptr;
liberty::CellLibrary *FullFlow::silicon = nullptr;

TEST_F(FullFlow, DeviceToLibraryDelayChain)
{
    // The library's inverter delay must be consistent with the
    // device-level current drive: C * V / I within an order of
    // magnitude.
    const auto device = device::makePentaceneGolden();
    const auto &inv = organic->cell("inv");
    const double measured = inv.arc(0).worstDelay(
        organic->defaultSlew(), inv.inputCap);
    EXPECT_GT(measured, 1e-6);
    EXPECT_LT(measured, 1e-3);
    (void)device;
}

TEST_F(FullFlow, SixOrdersOfMagnitudeSpeedGap)
{
    const auto &si_inv = silicon->cell("inv");
    const auto &org_inv = organic->cell("inv");
    const double si = si_inv.arc(0).worstDelay(silicon->defaultSlew(),
                                               4.0 * si_inv.inputCap);
    const double org = org_inv.arc(0).worstDelay(
        organic->defaultSlew(), 4.0 * org_inv.inputCap);
    const double ratio = org / si;
    EXPECT_GT(ratio, 1e5);
    EXPECT_LT(ratio, 1e8);
}

TEST_F(FullFlow, AluPipelineContrast)
{
    // Paper Fig. 12 headline in one assertion: between 8 and 22
    // stages the organic ALU keeps gaining much more frequency than
    // the silicon ALU.
    netlist::Netlist alu;
    {
        netlist::NetBuilder b(alu);
        const auto x = b.inputBus("a", 16);
        const auto y = b.inputBus("y", 16);
        b.outputBus("p", netlist::arrayMultiplier(b, x, y));
    }
    const auto buffered = netlist::bufferize(alu, 6);

    auto gain = [&](const liberty::CellLibrary &lib) {
        sta::Pipeliner pipeliner(lib);
        sta::StaEngine engine(lib);
        const auto f8 =
            engine.analyze(pipeliner.pipeline(buffered, 8).netlist)
                .maxFrequency;
        const auto f22 =
            engine.analyze(pipeliner.pipeline(buffered, 22).netlist)
                .maxFrequency;
        return f22 / f8;
    };
    EXPECT_GT(gain(*organic), 1.15 * gain(*silicon));
}

TEST_F(FullFlow, CoreDepthOptimumOrdering)
{
    // Paper Fig. 11 headline: the organic optimum is at least as deep
    // as the silicon optimum, and organic frequency scales farther.
    core::ExplorerConfig config;
    config.instructions = 12000;
    core::ArchExplorer si_explorer(*silicon, config);
    core::ArchExplorer org_explorer(*organic, config);

    const auto si_sweep = si_explorer.depthSweep(14);
    const auto org_sweep = org_explorer.depthSweep(14);

    auto best_stage = [](const core::DepthSweep &sweep) {
        int best = 0;
        double best_perf = -1.0;
        for (const auto &pt : sweep.points) {
            if (pt.performance > best_perf) {
                best_perf = pt.performance;
                best = pt.config.totalStages();
            }
        }
        return best;
    };
    EXPECT_GE(best_stage(org_sweep), best_stage(si_sweep));

    const double si_gain = si_sweep.points.back().timing.frequency /
                           si_sweep.points.front().timing.frequency;
    const double org_gain =
        org_sweep.points.back().timing.frequency /
        org_sweep.points.front().timing.frequency;
    EXPECT_GT(org_gain, si_gain);
}

TEST_F(FullFlow, WidthSensitivityContrast)
{
    // Paper Fig. 13 headline: performance falls off much faster with
    // back-end width on silicon than on organic.
    core::ExplorerConfig config;
    config.instructions = 8000;
    auto penalty = [&](const liberty::CellLibrary &lib) {
        core::CoreSynthesizer synth(lib, config.sta);
        auto narrow = arch::baselineConfig();
        narrow.fetchWidth = 2;
        narrow.aluPipes = 1;
        auto wide = narrow;
        wide.aluPipes = 5;
        const double fn = synth.synthesize(narrow).frequency;
        const double fw = synth.synthesize(wide).frequency;
        return fn / fw; // > 1: widening costs cycle time
    };
    const double si_penalty = penalty(*silicon);
    const double org_penalty = penalty(*organic);
    EXPECT_GT(si_penalty, org_penalty);
}

TEST_F(FullFlow, OrganicBaselineNearPaperFrequency)
{
    core::CoreSynthesizer synth(*organic);
    const auto timing = synth.synthesize(arch::baselineConfig());
    // Paper: ~200 Hz for the 9-stage organic baseline.
    EXPECT_GT(timing.frequency, 50.0);
    EXPECT_LT(timing.frequency, 800.0);
}

TEST_F(FullFlow, SiliconBaselineNearPaperFrequency)
{
    core::CoreSynthesizer synth(*silicon);
    const auto timing = synth.synthesize(arch::baselineConfig());
    // Paper: ~800 MHz; accept the same order of magnitude.
    EXPECT_GT(timing.frequency, 1e8);
    EXPECT_LT(timing.frequency, 3e9);
}

TEST_F(FullFlow, TelemetryCoversEveryLayer)
{
    // A mini end-to-end run must leave nonzero counters from the
    // circuit solver up through the architecture explorer.
    stats::Registry &reg = stats::Registry::instance();
    reg.reset();

    // STA + explorer + arch: evaluate one design point on the silicon
    // library (fast) with a small instruction budget.
    core::ExplorerConfig config;
    config.instructions = 2000;
    core::ArchExplorer explorer(*silicon, config);
    (void)explorer.evaluate(arch::baselineConfig());

    // Circuit + liberty: the explorer path runs no SPICE, so
    // characterize the organic library once more on a minimal
    // (2x2, the NLDM floor) grid.
    liberty::CharacterizerConfig mini;
    mini.slewAxis = {4e-6, 64e-6};
    mini.loadMultipliers = {0.5, 6.0};
    (void)liberty::makeOrganicLibrary(mini);

    EXPECT_GT(stats::counter("circuit.newton.iterations").value(), 0u);
    EXPECT_GT(stats::counter("circuit.newton.solves").value(), 0u);
    EXPECT_GT(stats::counter("liberty.arcs.characterized").value(), 0u);
    EXPECT_GT(stats::counter("sta.arcs.evaluated").value(), 0u);
    EXPECT_GT(stats::counter("sta.levelization.passes").value(), 0u);
    EXPECT_GT(stats::counter("explorer.points.evaluated").value(), 0u);
    EXPECT_GT(stats::counter("arch.instructions.simulated").value(),
              0u);
    EXPECT_GT(stats::counter("workload.instructions.generated").value(),
              0u);
    EXPECT_GT(reg.rateValue("circuit.newton.mean_iterations"), 0.0);
}

TEST_F(FullFlow, WireRemovalMovesSiliconNotOrganic)
{
    // Paper Fig. 15: organic is insensitive to the wire model;
    // silicon is transformed by it.
    sta::StaConfig no_wire;
    no_wire.wireEnabled = false;

    core::CoreSynthesizer si_with(*silicon);
    core::CoreSynthesizer si_without(*silicon, no_wire);
    core::CoreSynthesizer org_with(*organic);
    core::CoreSynthesizer org_without(*organic, no_wire);

    const auto cfg = arch::baselineConfig();
    const double si_boost = si_without.synthesize(cfg).frequency /
                            si_with.synthesize(cfg).frequency;
    const double org_boost = org_without.synthesize(cfg).frequency /
                             org_with.synthesize(cfg).frequency;
    EXPECT_GT(si_boost, 1.3);
    EXPECT_LT(org_boost, 1.1);
}

} // namespace
} // namespace otft
