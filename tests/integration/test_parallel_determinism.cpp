/**
 * @file
 * End-to-end determinism of the parallel layer: the NLDM
 * characterization and the explorer design-space sweep must produce
 * byte-identical dumps at --jobs 1 and --jobs 8. Every double is
 * printed with %.17g (round-trip exact), so any reordering of
 * floating-point operations or cross-task contamination flips bytes
 * and fails the comparison.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "arch/config.hpp"
#include "core/explorer.hpp"
#include "liberty/characterizer.hpp"
#include "liberty/silicon.hpp"
#include "util/parallel.hpp"

namespace otft {
namespace {

void
append(std::string &out, const char *label, double v)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%s=%.17g\n", label, v);
    out += buffer;
}

void
append(std::string &out, const char *label,
       const std::vector<double> &values)
{
    out += label;
    char buffer[40];
    for (double v : values) {
        std::snprintf(buffer, sizeof(buffer), " %.17g", v);
        out += buffer;
    }
    out += "\n";
}

/** Full-precision text dump of one characterized cell. */
std::string
dumpCell(const liberty::StdCell &cell)
{
    std::string out = "cell " + cell.name + "\n";
    append(out, "area", cell.area);
    append(out, "leakage", cell.leakage);
    append(out, "inputCap", cell.inputCap);
    for (const auto &arc : cell.arcs) {
        out += "arc " + arc.fromPin + "\n";
        for (int sense = 0; sense < 2; ++sense) {
            append(out, "delay.slews", arc.delay[sense].slewAxis());
            append(out, "delay.loads", arc.delay[sense].loadAxis());
            append(out, "delay.values", arc.delay[sense].values());
            append(out, "slew.values",
                   arc.outputSlew[sense].values());
        }
    }
    return out;
}

/** Full-precision text dump of one evaluated design point. */
std::string
dumpPoint(const core::DesignPoint &point)
{
    std::string out;
    out += "point fe=" + std::to_string(point.config.fetchWidth) +
           " alu=" + std::to_string(point.config.aluPipes) + "\n";
    append(out, "frequency", point.timing.frequency);
    append(out, "area", point.timing.area);
    append(out, "ipc", point.ipc);
    append(out, "meanIpc", point.meanIpc);
    append(out, "performance", point.performance);
    return out;
}

TEST(ParallelDeterminism, NldmCharacterizationByteIdentical)
{
    // The 2x2 grid keeps the transient budget small; the parallel
    // fan-out (one task per grid point and cell arc) is exercised all
    // the same.
    liberty::CharacterizerConfig mini;
    mini.slewAxis = {4e-6, 64e-6};
    mini.loadMultipliers = {0.5, 6.0};

    const auto characterize = [&mini](int jobs_count) {
        parallel::JobsOverride pin(jobs_count);
        liberty::Characterizer chr(cells::CellFactory{}, mini);
        return dumpCell(chr.characterizeCombinational("nand2")) +
               dumpCell(chr.characterizeCombinational("inv"));
    };

    const std::string serial = characterize(1);
    const std::string parallel8 = characterize(8);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel8);
}

TEST(ParallelDeterminism, ExplorerSweepByteIdentical)
{
    const liberty::CellLibrary silicon =
        liberty::makeSiliconLibrary();

    const auto sweep = [&silicon](int jobs_count) {
        parallel::JobsOverride pin(jobs_count);
        core::ExplorerConfig config;
        config.instructions = 2000;
        core::ArchExplorer explorer(silicon, config);
        const auto grid = explorer.widthSweep(1, 2, 3, 4);
        std::string out;
        for (const auto &row : grid.points)
            for (const auto &point : row)
                out += dumpPoint(point);
        return out;
    };

    const std::string serial = sweep(1);
    const std::string parallel8 = sweep(8);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel8);
}

TEST(ParallelDeterminism, IpcFanOutByteIdentical)
{
    const liberty::CellLibrary silicon =
        liberty::makeSiliconLibrary();

    const auto measure = [&silicon](int jobs_count) {
        parallel::JobsOverride pin(jobs_count);
        core::ExplorerConfig config;
        config.instructions = 5000;
        core::ArchExplorer explorer(silicon, config);
        std::string out;
        append(out, "ipc",
               explorer.measureIpc(arch::baselineConfig()));
        return out;
    };

    EXPECT_EQ(measure(1), measure(8));
}

} // namespace
} // namespace otft
