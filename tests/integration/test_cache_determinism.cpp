/**
 * @file
 * End-to-end determinism of the content-addressed result cache: a
 * cache-warm run must be byte-identical to the cache-cold run that
 * populated it, a cached run must match a cache-disabled run, and the
 * cache must stay race-free under the parallel fan-out. Every double
 * is printed with %.17g, so a single flipped bit fails the compare.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "arch/config.hpp"
#include "core/explorer.hpp"
#include "liberty/characterizer.hpp"
#include "liberty/silicon.hpp"
#include "util/parallel.hpp"
#include "util/result_cache.hpp"

namespace otft {
namespace {

void
append(std::string &out, const char *label, double v)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%s=%.17g\n", label, v);
    out += buffer;
}

void
append(std::string &out, const char *label,
       const std::vector<double> &values)
{
    out += label;
    char buffer[40];
    for (double v : values) {
        std::snprintf(buffer, sizeof(buffer), " %.17g", v);
        out += buffer;
    }
    out += "\n";
}

/** Full-precision text dump of one characterized cell. */
std::string
dumpCell(const liberty::StdCell &cell)
{
    std::string out = "cell " + cell.name + "\n";
    append(out, "area", cell.area);
    append(out, "leakage", cell.leakage);
    append(out, "inputCap", cell.inputCap);
    for (const auto &arc : cell.arcs) {
        out += "arc " + arc.fromPin + "\n";
        for (int sense = 0; sense < 2; ++sense) {
            append(out, "delay.slews", arc.delay[sense].slewAxis());
            append(out, "delay.loads", arc.delay[sense].loadAxis());
            append(out, "delay.values", arc.delay[sense].values());
            append(out, "slew.values",
                   arc.outputSlew[sense].values());
        }
    }
    return out;
}

/** Full-precision text dump of one evaluated design point. */
std::string
dumpPoint(const core::DesignPoint &point)
{
    std::string out;
    out += "point fe=" + std::to_string(point.config.fetchWidth) +
           " alu=" + std::to_string(point.config.aluPipes) + "\n";
    append(out, "frequency", point.timing.frequency);
    append(out, "area", point.timing.area);
    append(out, "ipc", point.ipc);
    append(out, "meanIpc", point.meanIpc);
    append(out, "performance", point.performance);
    return out;
}

liberty::CharacterizerConfig
miniGrid()
{
    liberty::CharacterizerConfig mini;
    mini.slewAxis = {4e-6, 64e-6};
    mini.loadMultipliers = {0.5, 6.0};
    return mini;
}

std::string
characterizeInv(const liberty::CharacterizerConfig &cfg, int jobs)
{
    parallel::JobsOverride pin(jobs);
    liberty::Characterizer chr(cells::CellFactory{}, cfg);
    return dumpCell(chr.characterizeCombinational("inv"));
}

/**
 * Contract under test: hits are used as whole results, never as
 * iteration seeds, so the bits a warm run reads back are exactly the
 * bits the cold run computed and stored.
 */
TEST(CacheDeterminism, NldmColdAndWarmRunsAreByteIdentical)
{
    auto &cache = cache::ResultCache::instance();
    cache.clear();
    const liberty::CharacterizerConfig mini = miniGrid();

    const std::string cold = characterizeInv(mini, 1);
    ASSERT_GT(cache.size(), 0u)
        << "cold run should have populated the cache";
    const std::string warm = characterizeInv(mini, 1);

    EXPECT_FALSE(cold.empty());
    EXPECT_EQ(cold, warm);
    cache.clear();
}

TEST(CacheDeterminism, NldmCachedMatchesCacheDisabled)
{
    auto &cache = cache::ResultCache::instance();
    cache.clear();

    liberty::CharacterizerConfig uncached = miniGrid();
    uncached.useCache = false;
    const std::string reference = characterizeInv(uncached, 1);
    ASSERT_EQ(cache.size(), 0u)
        << "useCache = false must not touch the cache";

    const liberty::CharacterizerConfig cached = miniGrid();
    const std::string cold = characterizeInv(cached, 1);
    const std::string warm = characterizeInv(cached, 1);
    EXPECT_EQ(reference, cold);
    EXPECT_EQ(reference, warm);
    cache.clear();
}

TEST(CacheDeterminism, NldmParallelJobsMatchSerialColdAndWarm)
{
    auto &cache = cache::ResultCache::instance();
    const liberty::CharacterizerConfig mini = miniGrid();

    cache.clear();
    const std::string serial_cold = characterizeInv(mini, 1);

    // A fresh cache filled under the 8-way fan-out must still read
    // back the same bits: keys are content-addressed and the values
    // stored are the deterministic per-point results.
    cache.clear();
    const std::string parallel_cold = characterizeInv(mini, 8);
    const std::string parallel_warm = characterizeInv(mini, 8);

    EXPECT_EQ(serial_cold, parallel_cold);
    EXPECT_EQ(serial_cold, parallel_warm);
    cache.clear();
}

TEST(CacheDeterminism, ExplorerPointColdAndWarmRunsAreByteIdentical)
{
    auto &cache = cache::ResultCache::instance();
    cache.clear();
    const liberty::CellLibrary silicon =
        liberty::makeSiliconLibrary();

    const auto evaluate = [&silicon] {
        core::ExplorerConfig config;
        config.instructions = 2000;
        core::ArchExplorer explorer(silicon, config);
        return dumpPoint(explorer.evaluate(arch::baselineConfig()));
    };

    const std::string cold = evaluate();
    ASSERT_GT(cache.size(), 0u)
        << "cold evaluation should have populated the cache";
    const std::string warm = evaluate();
    EXPECT_FALSE(cold.empty());
    EXPECT_EQ(cold, warm);

    core::ExplorerConfig uncached_config;
    uncached_config.instructions = 2000;
    uncached_config.useCache = false;
    core::ArchExplorer uncached(silicon, uncached_config);
    EXPECT_EQ(dumpPoint(uncached.evaluate(arch::baselineConfig())),
              cold);
    cache.clear();
}

} // namespace
} // namespace otft
