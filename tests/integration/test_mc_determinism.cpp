/**
 * @file
 * Tier-1 determinism gate for the Monte Carlo characterization: the
 * serialized statistical library must be byte-identical at --jobs 1
 * and --jobs 8. The text serializer prints every double at %.17g
 * (round-trip exact), so any task reordering, cross-sample RNG
 * contamination, or non-associative reduction flips bytes and fails
 * the string comparison.
 *
 * The MC fan-out is shrunk (two cells, 2x2 grid, three samples) so
 * the gate stays tier-1 fast; the full-roster run lives in the
 * mc_smoke lane.
 */

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "liberty/mc_characterizer.hpp"
#include "liberty/serialize.hpp"
#include "util/parallel.hpp"

namespace otft {
namespace {

liberty::McConfig
smallConfig()
{
    liberty::McConfig config;
    config.samples = 3;
    config.seed = 11;
    config.roster = {"inv", "nand2"};
    config.grid.slewAxis = {8e-6, 32e-6};
    config.grid.loadMultipliers = {1.0, 4.0};
    config.baseName = "mc_determinism";
    return config;
}

/** Serialized triple of the statistical library at a jobs count. */
std::string
statDumpAtJobs(int jobs)
{
    parallel::JobsOverride guard(jobs);
    const liberty::StatLibrary stat =
        liberty::McCharacterizer(smallConfig()).run();
    std::ostringstream out;
    liberty::writeLibrary(out, stat.mean);
    liberty::writeLibrary(out, stat.slow);
    liberty::writeLibrary(out, stat.fast);
    return out.str();
}

TEST(McDeterminism, StatLibraryBytesIdenticalAcrossJobCounts)
{
    const std::string serial = statDumpAtJobs(1);
    const std::string parallel8 = statDumpAtJobs(8);
    EXPECT_EQ(serial, parallel8);
}

TEST(McDeterminism, StatLibraryBytesIdenticalWithCacheDisabled)
{
    // The second run above hits the process result cache; this run
    // recomputes every transient from scratch. Cache hits must be
    // byte-equivalent to cold computation even for sampled devices.
    const std::string cached = statDumpAtJobs(4);
    parallel::JobsOverride guard(4);
    liberty::McConfig config = smallConfig();
    config.grid.useCache = false;
    const liberty::StatLibrary stat =
        liberty::McCharacterizer(config).run();
    std::ostringstream out;
    liberty::writeLibrary(out, stat.mean);
    liberty::writeLibrary(out, stat.slow);
    liberty::writeLibrary(out, stat.fast);
    EXPECT_EQ(cached, out.str());
}

} // namespace
} // namespace otft
