/**
 * @file
 * Determinism gate for the batched solver engine: NLDM tables and
 * Monte Carlo statistical libraries must be byte-identical between
 * the scalar engine (--batch-lanes 0) and the 8-lane batched engine,
 * at --jobs 1 and --jobs 8, with the result cache off. Every double
 * is printed with %.17g (round-trip exact), so a single reassociated
 * floating-point operation anywhere in the batched lockstep flips
 * bytes and fails the gate.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "liberty/characterizer.hpp"
#include "liberty/mc_characterizer.hpp"
#include "liberty/serialize.hpp"
#include "util/parallel.hpp"

namespace otft {
namespace {

void
append(std::string &out, const char *label, double v)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%s=%.17g\n", label, v);
    out += buffer;
}

void
append(std::string &out, const char *label,
       const std::vector<double> &values)
{
    out += label;
    char buffer[40];
    for (double v : values) {
        std::snprintf(buffer, sizeof(buffer), " %.17g", v);
        out += buffer;
    }
    out += "\n";
}

/** Full-precision text dump of one characterized cell. */
std::string
dumpCell(const liberty::StdCell &cell)
{
    std::string out = "cell " + cell.name + "\n";
    append(out, "area", cell.area);
    append(out, "leakage", cell.leakage);
    append(out, "inputCap", cell.inputCap);
    for (const auto &arc : cell.arcs) {
        out += "arc " + arc.fromPin + "\n";
        for (int sense = 0; sense < 2; ++sense) {
            append(out, "delay.slews", arc.delay[sense].slewAxis());
            append(out, "delay.loads", arc.delay[sense].loadAxis());
            append(out, "delay.values", arc.delay[sense].values());
            append(out, "slew.values",
                   arc.outputSlew[sense].values());
        }
    }
    return out;
}

TEST(BatchDeterminism, NldmByteIdenticalAcrossLaneWidthAndJobs)
{
    // 2x3 grid: batches split unevenly across 8 lanes (6 points fill
    // one partial batch) and across width-3 groups, exercising the
    // ragged-tail packing. Cache off: every point must be measured.
    liberty::CharacterizerConfig mini;
    mini.slewAxis = {4e-6, 64e-6};
    mini.loadMultipliers = {0.5, 2.0, 6.0};
    mini.useCache = false;

    const auto characterize = [&mini](int lanes, int jobs_count) {
        parallel::JobsOverride pin(jobs_count);
        liberty::CharacterizerConfig cfg = mini;
        cfg.batchLanes = lanes;
        liberty::Characterizer chr(cells::CellFactory{}, cfg);
        return dumpCell(chr.characterizeCombinational("nand2")) +
               dumpCell(chr.characterizeCombinational("inv"));
    };

    const std::string scalar_serial = characterize(0, 1);
    EXPECT_FALSE(scalar_serial.empty());
    // The batched engine at any width, serial or parallel, must
    // reproduce the scalar-serial reference bytes.
    EXPECT_EQ(scalar_serial, characterize(8, 1));
    EXPECT_EQ(scalar_serial, characterize(8, 8));
    EXPECT_EQ(scalar_serial, characterize(3, 8));
    EXPECT_EQ(scalar_serial, characterize(0, 8));
}

TEST(BatchDeterminism, SessionLaneSettingResolvedByConfig)
{
    // batchLanes = -1 defers to the session-wide parallel setting
    // (--batch-lanes / OTFT_BATCH_LANES); pin it both ways and check
    // the bytes still match the explicit widths.
    liberty::CharacterizerConfig mini;
    mini.slewAxis = {4e-6, 64e-6};
    mini.loadMultipliers = {0.5, 6.0};
    mini.useCache = false;

    const auto characterize = [&mini](int session_lanes) {
        parallel::BatchLanesOverride lanes(session_lanes);
        liberty::Characterizer chr(cells::CellFactory{}, mini);
        return dumpCell(chr.characterizeCombinational("inv"));
    };

    const std::string scalar = characterize(0);
    EXPECT_FALSE(scalar.empty());
    EXPECT_EQ(scalar, characterize(8));
    EXPECT_EQ(scalar, characterize(2));
}

TEST(BatchDeterminism, McStatisticalLibraryByteIdentical)
{
    // The MC path packs per-sample grids into lanes inside each
    // (sample, cell) worker; the serialized statistical triple must
    // not see the lane width either.
    liberty::McConfig config;
    config.samples = 3;
    config.seed = 11;
    config.roster = {"inv"};
    config.grid.slewAxis = {4e-6, 64e-6};
    config.grid.loadMultipliers = {0.5, 6.0};
    config.grid.useCache = false;
    config.baseName = "batch_determinism";

    const auto run = [&config](int lanes, int jobs_count) {
        parallel::JobsOverride pin(jobs_count);
        liberty::McConfig cfg = config;
        cfg.grid.batchLanes = lanes;
        const liberty::StatLibrary stat =
            liberty::McCharacterizer(cfg).run();
        std::ostringstream out;
        liberty::writeLibrary(out, stat.mean);
        liberty::writeLibrary(out, stat.slow);
        liberty::writeLibrary(out, stat.fast);
        return out.str();
    };

    const std::string scalar_serial = run(0, 1);
    EXPECT_FALSE(scalar_serial.empty());
    EXPECT_EQ(scalar_serial, run(8, 1));
    EXPECT_EQ(scalar_serial, run(8, 8));
}

} // namespace
} // namespace otft
