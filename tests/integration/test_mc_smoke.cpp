/**
 * @file
 * Monte Carlo smoke lane: the full-roster 16-sample statistical
 * characterization, end to end, exactly as `bench/mc_characterize`
 * runs it. Labeled `mc_smoke` (opt-in: `ctest -L mc_smoke`, run by
 * scripts/verify.sh --mc) instead of tier1 — it is the one test that
 * pays for the whole samples x cells transient fan-out, tens of
 * seconds of solver time on a cold cache.
 */

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "liberty/mc_characterizer.hpp"
#include "liberty/serialize.hpp"

namespace otft {
namespace {

TEST(McSmoke, FullRosterSixteenSampleCharacterization)
{
    liberty::McConfig config; // defaults: 16 samples, 6 cells, seed 1
    const liberty::StatLibrary stat =
        liberty::McCharacterizer(config).run();

    // The triple validates: finite tables, slow >= mean >= fast.
    const std::string error = liberty::validateStatLibrary(
        stat.mean, stat.slow, stat.fast);
    EXPECT_TRUE(error.empty()) << error;

    ASSERT_EQ(stat.cells.size(), config.roster.size());
    EXPECT_EQ(stat.samples, 16);

    // Every cell shows real spread: the paper's published VT band
    // (0.5 V across a sample) must translate into a measurably
    // nonzero per-arc delay sigma, and the flop must carry sequential
    // statistics.
    for (const liberty::CellStats &cell : stat.cells) {
        const double frac = cell.meanDelaySigmaFraction();
        EXPECT_GT(frac, 0.01) << cell.name;
        EXPECT_LT(frac, 1.0) << cell.name;
        EXPECT_GT(cell.leakageMean, 0.0) << cell.name;
        if (cell.name == "dff") {
            EXPECT_GT(cell.clkToQMean, 0.0);
            EXPECT_GT(cell.clkToQSigma, 0.0);
            EXPECT_GT(cell.setupSigma, 0.0);
        }
    }

    // The corner libraries serialize and reload bit-exact, so the
    // artifacts bench/mc_characterize writes are trustworthy.
    for (const liberty::CellLibrary *corner :
         {&stat.mean, &stat.slow, &stat.fast}) {
        std::ostringstream first;
        liberty::writeLibrary(first, *corner);
        std::istringstream in(first.str());
        const liberty::CellLibrary reloaded =
            liberty::readLibrary(in);
        std::ostringstream second;
        liberty::writeLibrary(second, reloaded);
        EXPECT_EQ(first.str(), second.str());
    }
}

} // namespace
} // namespace otft
