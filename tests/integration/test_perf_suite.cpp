/**
 * @file
 * Perf flight recorder smoke test (ctest label: perf_smoke, not
 * tier-1): the registered scenario set covers every flow layer, a
 * short run produces sane timings plus nonzero counter deltas, the
 * report round-trips through the canonical JSON, and an injected
 * slowdown is flagged by the noise-gated diff.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "scenarios.hpp"
#include "util/logging.hpp"
#include "util/perf_report.hpp"

namespace otft {
namespace {

class PerfSuite : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        setQuiet(true);
        perf::ScenarioSuite suite;
        bench::registerAllScenarios(suite);
        perf::SuiteOptions options;
        options.reps = 2;
        options.warmup = 1;
        report = new perf::BenchReport();
        report->reps = options.reps;
        report->warmup = options.warmup;
        report->env = perf::currentEnvironment();
        report->scenarios = suite.run(options);
    }

    static void
    TearDownTestSuite()
    {
        delete report;
        report = nullptr;
        setQuiet(false);
    }

    static perf::BenchReport *report;
};

perf::BenchReport *PerfSuite::report = nullptr;

TEST_F(PerfSuite, CoversEveryFlowLayer)
{
    perf::ScenarioSuite suite;
    bench::registerAllScenarios(suite);
    EXPECT_GE(suite.scenarios().size(), 9u);
    std::set<std::string> layers;
    for (const auto &s : suite.scenarios())
        layers.insert(s.layer);
    for (const char *layer :
         {"device", "circuit", "cells", "liberty", "netlist", "sta",
          "workload", "arch", "core"})
        EXPECT_TRUE(layers.count(layer)) << "missing layer " << layer;
}

TEST_F(PerfSuite, EveryScenarioTimesAndCounts)
{
    ASSERT_GE(report->scenarios.size(), 9u);
    for (const auto &s : report->scenarios) {
        SCOPED_TRACE(s.name);
        EXPECT_EQ(s.timing.reps, 2u);
        EXPECT_GT(s.timing.minS, 0.0);
        EXPECT_GE(s.timing.p95S, s.timing.medianS);
        EXPECT_GE(s.timing.medianS, s.timing.minS);
        EXPECT_GT(s.points, 0u);
        // The layer's own instrumentation moved during the run.
        EXPECT_FALSE(s.counters.empty());
        for (const auto &[name, delta] : s.counters)
            EXPECT_GT(delta, 0.0) << name;
    }
}

TEST_F(PerfSuite, ReportRoundTripsAndSelfDiffsClean)
{
    std::stringstream ss;
    perf::writeReport(*report, ss);
    const perf::BenchReport parsed = perf::readReport(ss);
    ASSERT_EQ(parsed.scenarios.size(), report->scenarios.size());
    EXPECT_EQ(parsed.env.gitSha, report->env.gitSha);

    const perf::DiffReport diff = perf::diffReports(*report, parsed);
    EXPECT_EQ(diff.regressions, 0);
    EXPECT_EQ(diff.improvements, 0);
}

TEST_F(PerfSuite, InjectedSlowdownTripsTheGate)
{
    perf::BenchReport slowed = *report;
    // Slow down the longest-running scenario (the most stable
    // relative MAD, so the verdict never depends on timer jitter).
    auto victim_it = slowed.scenarios.begin();
    for (auto it = slowed.scenarios.begin();
         it != slowed.scenarios.end(); ++it)
        if (it->timing.medianS > victim_it->timing.medianS)
            victim_it = it;
    auto &victim = *victim_it;
    for (double &sample : victim.samplesS)
        sample *= 4.0;
    victim.timing = perf::summarizeTimes(victim.samplesS);

    const perf::DiffReport diff = perf::diffReports(*report, slowed);
    EXPECT_GE(diff.regressions, 1);
    bool flagged = false;
    for (const auto &entry : diff.entries)
        if (entry.scenario == victim.name &&
            entry.metric == "wall_s" &&
            entry.status == perf::DiffStatus::Regressed)
            flagged = true;
    EXPECT_TRUE(flagged);

    // And the reverse direction is an improvement, exit-code clean.
    const perf::DiffReport reverse =
        perf::diffReports(slowed, *report);
    EXPECT_EQ(reverse.regressions, 0);
    EXPECT_GE(reverse.improvements, 1);
}

} // namespace
} // namespace otft
