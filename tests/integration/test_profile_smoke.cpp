/**
 * @file
 * Profiler smoke test (ctest label: profile_smoke, not tier-1): runs
 * the real nldm_characterize scenarios under `--profile` and checks
 * the end-to-end artifacts — a non-empty folded collapsed-stack file
 * whose hottest stack names solver/characterization work, and a
 * parseable otft-prof-1 footer section. Wall-clock sensitive by
 * construction, hence the opt-in label (scripts/verify.sh --profile).
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "scenarios.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/perf_report.hpp"
#include "util/profiler.hpp"

namespace otft {
namespace {

class ProfileSmoke : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        setQuiet(true);
        artifactDir = ::testing::TempDir();

        perf::ScenarioSuite suite;
        bench::registerAllScenarios(suite);
        perf::SuiteOptions options;
        options.reps = 1;
        options.warmup = 0;
        options.filter = "liberty.nldm_characterize";
        options.profile = true;
        options.profileDir = artifactDir;
        options.profilePeriodUs = 200;
        results = suite.run(options);
    }

    static void
    TearDownTestSuite()
    {
        setQuiet(false);
    }

    static std::string
    foldedPath(const std::string &stem)
    {
        return artifactDir + "/PROF_" + stem + ".folded";
    }

    static std::string artifactDir;
    static std::vector<perf::ScenarioResult> results;
};

std::string ProfileSmoke::artifactDir;
std::vector<perf::ScenarioResult> ProfileSmoke::results;

TEST_F(ProfileSmoke, ScenariosStillProduceResultsWhenProfiled)
{
    // The serial, fanned-out, and lane-batched variants all match
    // the substring filter.
    ASSERT_EQ(results.size(), 3u);
    for (const auto &r : results) {
        SCOPED_TRACE(r.name);
        EXPECT_GT(r.points, 0u);
        EXPECT_GT(r.timing.minS, 0.0);
    }
}

TEST_F(ProfileSmoke, FoldedArtifactNamesSolverWork)
{
    std::ifstream is(foldedPath("liberty_nldm_characterize"));
    ASSERT_TRUE(is) << "missing folded artifact";
    const auto stacks = prof::parseFolded(is);
    ASSERT_FALSE(stacks.empty());

    const prof::FoldedStack *hottest = &stacks.front();
    bool solver_seen = false;
    for (const auto &s : stacks) {
        EXPECT_GT(s.count, 0u);
        const std::string root = s.stack.substr(0, s.stack.find(';'));
        EXPECT_TRUE(root == "main" || root == "worker") << s.stack;
        if (s.count > hottest->count)
            hottest = &s;
        if (s.stack.find("mna.") != std::string::npos ||
            s.stack.find("transient.") != std::string::npos ||
            s.stack.find("liberty.") != std::string::npos)
            solver_seen = true;
    }
    EXPECT_TRUE(solver_seen)
        << "no solver/characterization frame in any stack";
    // The dominant stack must be attributed below a labeled frame,
    // not just the bare thread root.
    EXPECT_NE(hottest->stack.find(';'), std::string::npos)
        << hottest->stack;
}

TEST_F(ProfileSmoke, ParallelVariantWritesItsOwnArtifact)
{
    std::ifstream is(foldedPath("liberty_nldm_characterize_par"));
    ASSERT_TRUE(is) << "missing folded artifact";
    const auto stacks = prof::parseFolded(is);
    EXPECT_FALSE(stacks.empty());
}

TEST_F(ProfileSmoke, BatchedVariantWritesItsOwnArtifact)
{
    std::ifstream is(foldedPath("liberty_nldm_characterize_batched"));
    ASSERT_TRUE(is) << "missing folded artifact";
    const auto stacks = prof::parseFolded(is);
    EXPECT_FALSE(stacks.empty());
}

TEST_F(ProfileSmoke, FooterSectionParsesAsOtftProf1)
{
    // The profiler keeps the last collection (the _batched scenario).
    auto &profiler = prof::Profiler::instance();
    EXPECT_FALSE(profiler.running());
    const json::Value doc = json::parse(profiler.footerSection(5));
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.string("schema"), prof::profSchema);
    EXPECT_GT(doc.number("samples"), 0.0);
    ASSERT_TRUE(doc.has("top"));
    EXPECT_FALSE(doc.at("top").asArray().empty());
}

} // namespace
} // namespace otft
