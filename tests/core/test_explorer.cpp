/** @file Tests for the architecture exploration drivers. */

#include <gtest/gtest.h>

#include "core/explorer.hpp"
#include "liberty/silicon.hpp"

namespace otft::core {
namespace {

ExplorerConfig
quickConfig()
{
    ExplorerConfig config;
    config.instructions = 8000;
    return config;
}

TEST(Explorer, EvaluateProducesFullDesignPoint)
{
    const auto lib = liberty::makeSiliconLibrary();
    ArchExplorer explorer(lib, quickConfig());
    const auto point = explorer.evaluate(arch::baselineConfig());
    EXPECT_EQ(point.ipc.size(), 7u);
    EXPECT_GT(point.meanIpc, 0.0);
    EXPECT_GT(point.performance, 0.0);
    EXPECT_NEAR(point.performance,
                point.meanIpc * point.timing.frequency,
                point.performance * 1e-9);
}

TEST(Explorer, DepthSweepCoversRequestedStages)
{
    const auto lib = liberty::makeSiliconLibrary();
    ArchExplorer explorer(lib, quickConfig());
    const auto sweep = explorer.depthSweep(12);
    ASSERT_EQ(sweep.points.size(), 4u); // 9, 10, 11, 12
    for (std::size_t i = 0; i < sweep.points.size(); ++i)
        EXPECT_EQ(sweep.points[i].config.totalStages(),
                  9 + static_cast<int>(i));
    EXPECT_EQ(sweep.workloadNames.size(), 7u);
}

TEST(Explorer, DepthSweepIpcDeclines)
{
    const auto lib = liberty::makeSiliconLibrary();
    ArchExplorer explorer(lib, quickConfig());
    const auto sweep = explorer.depthSweep(13);
    EXPECT_LT(sweep.points.back().meanIpc,
              sweep.points.front().meanIpc);
}

TEST(Explorer, WidthSweepShape)
{
    const auto lib = liberty::makeSiliconLibrary();
    ArchExplorer explorer(lib, quickConfig());
    const auto sweep = explorer.widthSweep(1, 2, 3, 4);
    ASSERT_EQ(sweep.points.size(), 2u);    // be 3..4
    ASSERT_EQ(sweep.points[0].size(), 2u); // fe 1..2
    EXPECT_EQ(sweep.points[0][1].config.fetchWidth, 2);
    EXPECT_EQ(sweep.points[1][0].config.backendWidth(), 4);
}

TEST(Explorer, AluDepthSweepMonotoneFrequency)
{
    const auto lib = liberty::makeSiliconLibrary();
    ArchExplorer explorer(lib, quickConfig());
    const auto points = explorer.aluDepthSweep({1, 4, 8});
    ASSERT_EQ(points.size(), 3u);
    EXPECT_GT(points[1].frequency, points[0].frequency);
    EXPECT_GT(points[2].frequency, points[1].frequency);
    EXPECT_GT(points[2].area, points[0].area);
}

TEST(Explorer, IpcIndependentOfLibrary)
{
    // The paper's setup: one AnyCore simulation serves both processes.
    const auto lib = liberty::makeSiliconLibrary();
    liberty::SiliconConfig other_cfg;
    other_cfg.tau = 10e-12;
    const auto other = liberty::makeSiliconLibrary(other_cfg);

    ArchExplorer a(lib, quickConfig());
    ArchExplorer b(other, quickConfig());
    const auto pa = a.evaluate(arch::baselineConfig());
    const auto pb = b.evaluate(arch::baselineConfig());
    for (std::size_t i = 0; i < pa.ipc.size(); ++i)
        EXPECT_DOUBLE_EQ(pa.ipc[i], pb.ipc[i]);
    EXPECT_NE(pa.timing.frequency, pb.timing.frequency);
}

} // namespace
} // namespace otft::core
