/** @file Tests for core synthesis (timing/area per configuration). */

#include <gtest/gtest.h>

#include "core/synthesizer.hpp"
#include "liberty/silicon.hpp"

namespace otft::core {
namespace {

class Synthesis : public ::testing::Test
{
  protected:
    Synthesis() : library(liberty::makeSiliconLibrary()) {}

    liberty::CellLibrary library;
};

TEST_F(Synthesis, BaselineTimingComplete)
{
    CoreSynthesizer synth(library);
    const auto timing = synth.synthesize(arch::baselineConfig());
    EXPECT_GT(timing.frequency, 1e7);
    EXPECT_LT(timing.frequency, 5e9);
    EXPECT_GT(timing.area, 0.0);
    EXPECT_EQ(timing.regions.size(),
              static_cast<std::size_t>(arch::numRegions));
    EXPECT_GE(timing.complexAluStages, 1);
    // Core period is the max over regions (or a loop floor on the
    // issue/execute regions).
    for (const auto &rt : timing.regions)
        EXPECT_LE(rt.clockPeriod, timing.clockPeriod + 1e-15);
}

TEST_F(Synthesis, DeepeningCutsTheCriticalRegion)
{
    CoreSynthesizer synth(library);
    const auto base = arch::baselineConfig();
    const auto base_timing = synth.synthesize(base);
    const auto deeper = synth.deepen(base);
    EXPECT_EQ(deeper.totalStages(), base.totalStages() + 1);
    EXPECT_EQ(deeper.stagesIn(base_timing.critical),
              base.stagesIn(base_timing.critical) + 1);
}

TEST_F(Synthesis, DeepeningImprovesFrequencyInitially)
{
    CoreSynthesizer synth(library);
    auto config = arch::baselineConfig();
    const double f9 = synth.synthesize(config).frequency;
    config = synth.deepen(config);
    config = synth.deepen(config);
    const double f11 = synth.synthesize(config).frequency;
    EXPECT_GT(f11, f9);
}

TEST_F(Synthesis, WidthGrowsAreaMonotonically)
{
    CoreSynthesizer synth(library);
    double prev = 0.0;
    for (int be = 3; be <= 7; ++be) {
        auto config = arch::baselineConfig();
        config.fetchWidth = 2;
        config.aluPipes = be - 2;
        const auto timing = synth.synthesize(config);
        EXPECT_GT(timing.area, prev) << "be=" << be;
        prev = timing.area;
    }
}

TEST_F(Synthesis, ComplexAluMeetsCoreClock)
{
    CoreSynthesizer synth(library);
    const auto timing = synth.synthesize(arch::baselineConfig());
    // The stallable unit is pipelined until it fits under the clock,
    // so with a sane stage count the flag must be in range.
    EXPECT_GE(timing.complexAluStages, 1);
    EXPECT_LE(timing.complexAluStages, 48);
}

TEST_F(Synthesis, CachingIsConsistent)
{
    CoreSynthesizer synth(library);
    const auto a = synth.synthesize(arch::baselineConfig());
    const auto b = synth.synthesize(arch::baselineConfig());
    EXPECT_DOUBLE_EQ(a.clockPeriod, b.clockPeriod);
    EXPECT_DOUBLE_EQ(a.area, b.area);
}

TEST_F(Synthesis, WireOffRaisesFrequency)
{
    sta::StaConfig no_wire;
    no_wire.wireEnabled = false;
    CoreSynthesizer with(library);
    CoreSynthesizer without(library, no_wire);
    const auto fw = with.synthesize(arch::baselineConfig()).frequency;
    const auto fn =
        without.synthesize(arch::baselineConfig()).frequency;
    EXPECT_GT(fn, 1.3 * fw);
}

} // namespace
} // namespace otft::core
