/** @file Tests for the yield-aware architecture explorer. */

#include <gtest/gtest.h>

#include "arch/config.hpp"
#include "core/yield_explorer.hpp"
#include "liberty/silicon.hpp"

namespace otft::core {
namespace {

/** Silicon with synthetic 2% corners: cheap and deterministic. */
liberty::StatLibrary
testCorners()
{
    return liberty::scaledCorners(liberty::makeSiliconLibrary(), 0.02,
                                  3.0, "silicon_yield_test");
}

YieldExplorerConfig
quickConfig(double target_yield = 0.99)
{
    YieldExplorerConfig config;
    config.targetYield = target_yield;
    config.explorer.instructions = 8000;
    return config;
}

TEST(YieldExplorer, EvaluateDeratesFrequencyAtHighYield)
{
    YieldExplorer explorer(testCorners(), quickConfig());
    const auto point = explorer.evaluate(arch::baselineConfig());
    EXPECT_GT(point.nominal.performance, 0.0);
    EXPECT_GT(point.periodSigma, 0.0);
    EXPECT_GT(point.slowPeriod, point.nominal.timing.clockPeriod);
    // 99% yield costs frequency relative to the mean process.
    EXPECT_LT(point.yieldFrequency, point.nominal.timing.frequency);
    EXPECT_GT(point.yieldFrequency, 0.0);
    EXPECT_NEAR(point.yieldPerformance,
                point.nominal.meanIpc * point.yieldFrequency,
                point.yieldPerformance * 1e-9);
    EXPECT_DOUBLE_EQ(point.targetYield, 0.99);
}

TEST(YieldExplorer, MedianYieldMatchesMeanProcess)
{
    // At 50% target yield the sign-off clock is the mean-process
    // clock: Phi^-1(0.5) = 0.
    YieldExplorer explorer(testCorners(), quickConfig(0.5));
    const auto point = explorer.evaluate(arch::baselineConfig());
    EXPECT_NEAR(point.yieldFrequency, point.nominal.timing.frequency,
                point.yieldFrequency * 1e-9);
}

TEST(YieldExplorer, YieldCurveIsMonotone)
{
    YieldExplorer explorer(testCorners(), quickConfig());
    const auto curve = explorer.yieldCurve(arch::baselineConfig(), 17);
    ASSERT_EQ(curve.points.size(), 17u);
    EXPECT_GT(curve.meanIpc, 0.0);
    for (std::size_t i = 1; i < curve.points.size(); ++i) {
        // Increasing frequency, non-increasing yield.
        EXPECT_GT(curve.points[i].frequency,
                  curve.points[i - 1].frequency);
        EXPECT_LE(curve.points[i].yield, curve.points[i - 1].yield);
    }
    // The sweep spans both tails of the Gaussian.
    EXPECT_GT(curve.points.front().yield, 0.995);
    EXPECT_LT(curve.points.back().yield, 0.005);
}

TEST(YieldExplorer, CurveInterpolationInvertsItself)
{
    YieldExplorer explorer(testCorners(), quickConfig());
    const auto curve = explorer.yieldCurve(arch::baselineConfig(), 33);
    const double f99 = curve.frequencyAtYield(0.99);
    ASSERT_GT(f99, 0.0);
    EXPECT_NEAR(curve.yieldAtFrequency(f99), 0.99, 0.01);
    // Analytic cross-check against the Gaussian period model.
    EXPECT_LT(f99, 1.0 / curve.meanPeriod);
}

TEST(YieldExplorer, DepthSweepSignsOffEveryPoint)
{
    YieldExplorer explorer(testCorners(), quickConfig());
    const auto sweep = explorer.depthSweepAtYield(11);
    ASSERT_EQ(sweep.points.size(), 3u); // stages 9, 10, 11
    EXPECT_DOUBLE_EQ(sweep.targetYield, 0.99);
    for (const YieldDesignPoint &p : sweep.points) {
        EXPECT_GT(p.yieldFrequency, 0.0);
        EXPECT_LT(p.yieldFrequency, p.nominal.timing.frequency);
        EXPECT_GT(p.slowPeriod, p.nominal.timing.clockPeriod);
    }
}

TEST(YieldExplorer, WidthSweepShapeAndSignOff)
{
    YieldExplorer explorer(testCorners(), quickConfig());
    const auto sweep = explorer.widthSweepAtYield(1, 2, 3, 4);
    ASSERT_EQ(sweep.points.size(), 2u);    // be 3..4
    ASSERT_EQ(sweep.points[0].size(), 2u); // fe 1..2
    for (const auto &row : sweep.points)
        for (const YieldDesignPoint &p : row) {
            EXPECT_GT(p.yieldPerformance, 0.0);
            EXPECT_LE(p.yieldPerformance, p.nominal.performance);
        }
}

} // namespace
} // namespace otft::core
