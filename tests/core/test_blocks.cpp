/** @file Unit tests for the pipeline region block generators. */

#include <gtest/gtest.h>

#include "core/blocks.hpp"

namespace otft::core {
namespace {

arch::CoreConfig
config(int fe, int alu)
{
    arch::CoreConfig c;
    c.fetchWidth = fe;
    c.aluPipes = alu;
    return c;
}

TEST(Blocks, AllRegionsBuildNonTrivialNetlists)
{
    const auto cfg = config(2, 2);
    for (int r = 0; r < arch::numRegions; ++r) {
        const auto nl =
            buildRegionBlock(static_cast<arch::Region>(r), cfg);
        EXPECT_GT(nl.numGates(), 50u)
            << arch::toString(static_cast<arch::Region>(r));
        EXPECT_FALSE(nl.outputs().empty());
        EXPECT_TRUE(nl.dffs().empty()) << "regions are combinational";
    }
}

TEST(Blocks, FrontEndBlocksScaleWithFetchWidth)
{
    for (arch::Region r : {arch::Region::Decode, arch::Region::Rename,
                           arch::Region::Dispatch}) {
        const auto narrow = buildRegionBlock(r, config(1, 1));
        const auto wide = buildRegionBlock(r, config(6, 1));
        EXPECT_GT(wide.numGates(), 1.5 * narrow.numGates())
            << arch::toString(r);
    }
}

TEST(Blocks, BackEndBlocksScaleWithAluPipes)
{
    for (arch::Region r : {arch::Region::Issue, arch::Region::RegRead,
                           arch::Region::Execute}) {
        const auto narrow = buildRegionBlock(r, config(2, 1));
        const auto wide = buildRegionBlock(r, config(2, 5));
        EXPECT_GT(wide.numGates(), 1.4 * narrow.numGates())
            << arch::toString(r);
    }
}

TEST(Blocks, ComplexAluContainsMultiplierAndDivider)
{
    const auto nl = buildComplexAlu(2);
    EXPECT_GT(nl.numGates(), 10000u);
    // 32-bit product + 2 quotient bits + 32 remainder bits.
    EXPECT_EQ(nl.outputs().size(), 64u + 2u + 32u);
}

TEST(Blocks, WakeupLoopIsCompactAndCombinational)
{
    const auto nl = buildWakeupLoop(config(2, 2));
    EXPECT_TRUE(nl.dffs().empty());
    EXPECT_LT(nl.depth(), 40);
    EXPECT_GT(nl.numGates(), 100u);
}

TEST(Blocks, BypassLoopGrowsWithPipesButStaysShallow)
{
    const auto small = buildBypassLoop(config(2, 1));
    const auto big = buildBypassLoop(config(2, 5));
    EXPECT_GT(big.numGates(), small.numGates());
    // Tree mux: depth grows logarithmically, not linearly.
    EXPECT_LT(big.depth(), small.depth() + 14);
}

TEST(Blocks, StorageBitsScaleWithStructures)
{
    auto base = config(1, 1);
    auto big = base;
    big.robSize = 256;
    EXPECT_GT(storageBits(big), storageBits(base));

    auto wide = base;
    wide.fetchWidth = 6;
    EXPECT_GT(storageBits(wide), storageBits(base));
}

/** Sweep: issue block depth is width-stable (partitioned select). */
class IssueDepth : public ::testing::TestWithParam<int>
{
};

TEST_P(IssueDepth, DepthNearlyConstantInPipes)
{
    const auto one = buildRegionBlock(arch::Region::Issue,
                                      config(2, 1));
    const auto many = buildRegionBlock(arch::Region::Issue,
                                       config(2, GetParam()));
    EXPECT_LE(many.depth(), one.depth() + 8);
}

INSTANTIATE_TEST_SUITE_P(Pipes, IssueDepth,
                         ::testing::Values(2, 3, 4, 5));

} // namespace
} // namespace otft::core
