/** @file Unit tests for util/parallel. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/logging.hpp"
#include "util/parallel.hpp"

namespace otft {
namespace {

TEST(Parallel, HardwareJobsIsPositive)
{
    EXPECT_GE(parallel::hardwareJobs(), 1);
}

TEST(Parallel, SetJobsRoundTripsAndOverrideRestores)
{
    const int before = parallel::jobs();
    {
        parallel::JobsOverride pin(3);
        EXPECT_EQ(parallel::jobs(), 3);
        {
            parallel::JobsOverride nested(5);
            EXPECT_EQ(parallel::jobs(), 5);
        }
        EXPECT_EQ(parallel::jobs(), 3);
    }
    EXPECT_EQ(parallel::jobs(), before);
}

TEST(Parallel, SetJobsRejectsZeroAndNegative)
{
    EXPECT_THROW(parallel::setJobs(0), FatalError);
    EXPECT_THROW(parallel::setJobs(-4), FatalError);
}

TEST(Parallel, SetBatchLanesRoundTripsAndOverrideRestores)
{
    const int before = parallel::batchLanes();
    {
        parallel::BatchLanesOverride pin(4);
        EXPECT_EQ(parallel::batchLanes(), 4);
        {
            // 0 is valid: it selects the scalar solver engine.
            parallel::BatchLanesOverride nested(0);
            EXPECT_EQ(parallel::batchLanes(), 0);
        }
        EXPECT_EQ(parallel::batchLanes(), 4);
    }
    EXPECT_EQ(parallel::batchLanes(), before);
}

TEST(Parallel, SetBatchLanesRejectsNegative)
{
    EXPECT_THROW(parallel::setBatchLanes(-1), FatalError);
}

TEST(Parallel, DynamicChunkingRunsEveryIndexOnce)
{
    parallel::JobsOverride pin(8);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    const bool completed = parallel::parallelFor(
        n, [&](std::size_t i) { ++hits[i]; });
    EXPECT_TRUE(completed);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Parallel, StaticChunkingRunsEveryIndexOnce)
{
    parallel::JobsOverride pin(8);
    constexpr std::size_t n = 997; // prime: uneven static ranges
    std::vector<std::atomic<int>> hits(n);
    parallel::ForOptions options;
    options.chunking = parallel::Chunking::Static;
    const bool completed = parallel::parallelFor(
        n, [&](std::size_t i) { ++hits[i]; }, options);
    EXPECT_TRUE(completed);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Parallel, CoarseGrainRunsEveryIndexOnce)
{
    parallel::JobsOverride pin(4);
    constexpr std::size_t n = 103;
    std::vector<std::atomic<int>> hits(n);
    parallel::ForOptions options;
    options.grain = 7; // does not divide n
    EXPECT_TRUE(parallel::parallelFor(
        n, [&](std::size_t i) { ++hits[i]; }, options));
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Parallel, EmptyRangeCompletesWithoutCallingFn)
{
    parallel::JobsOverride pin(8);
    bool called = false;
    EXPECT_TRUE(
        parallel::parallelFor(0, [&](std::size_t) { called = true; }));
    EXPECT_FALSE(called);
}

TEST(Parallel, SingleJobRunsInlineOnCaller)
{
    parallel::JobsOverride pin(1);
    const auto caller = std::this_thread::get_id();
    std::vector<std::thread::id> ran(16);
    parallel::parallelFor(ran.size(), [&](std::size_t i) {
        ran[i] = std::this_thread::get_id();
    });
    for (const auto &id : ran)
        EXPECT_EQ(id, caller);
}

TEST(Parallel, InsideWorkerOnlyTrueOnPoolThreads)
{
    EXPECT_FALSE(parallel::insideWorker());
    parallel::JobsOverride pin(4);
    std::atomic<int> inside{0};
    std::atomic<int> outside{0};
    parallel::parallelFor(64, [&](std::size_t) {
        if (parallel::insideWorker())
            ++inside;
        else
            ++outside;
    });
    // The calling thread helps drain its own batch, so both kinds of
    // thread may appear; together they cover every index.
    EXPECT_EQ(inside.load() + outside.load(), 64);
    EXPECT_FALSE(parallel::insideWorker());
}

TEST(Parallel, NestedParallelForRunsInlineAndCompletely)
{
    parallel::JobsOverride pin(4);
    constexpr std::size_t outer_n = 8;
    constexpr std::size_t inner_n = 32;
    std::atomic<std::uint64_t> total{0};
    parallel::parallelFor(outer_n, [&](std::size_t) {
        const auto worker = std::this_thread::get_id();
        parallel::parallelFor(inner_n, [&](std::size_t) {
            // Inner loops never hop threads: a fan-out from inside a
            // worker would deadlock a single-slot pool.
            EXPECT_EQ(std::this_thread::get_id(), worker);
            ++total;
        });
    });
    EXPECT_EQ(total.load(), outer_n * inner_n);
}

TEST(Parallel, CancellationSkipsRemainingIndices)
{
    parallel::JobsOverride pin(2);
    parallel::CancelToken token;
    std::atomic<std::size_t> ran{0};
    parallel::ForOptions options;
    options.cancel = &token;
    const bool completed = parallel::parallelFor(
        100000,
        [&](std::size_t) {
            ++ran;
            token.cancel();
        },
        options);
    EXPECT_FALSE(completed);
    EXPECT_GE(ran.load(), 1u);
    EXPECT_LT(ran.load(), 100000u);
}

TEST(Parallel, LowestThrowingIndexWinsDeterministically)
{
    parallel::JobsOverride pin(8);
    for (int rep = 0; rep < 20; ++rep) {
        std::atomic<std::size_t> ran{0};
        try {
            parallel::parallelFor(64, [&](std::size_t i) {
                ++ran;
                if (i == 9 || i == 41 || i == 63)
                    throw std::runtime_error(std::to_string(i));
            });
            FAIL() << "expected the task exception to propagate";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "9");
        }
        // Exceptions abandon nothing: every index still runs, so the
        // surviving slots (and the winning exception) are the same at
        // any job count.
        EXPECT_EQ(ran.load(), 64u);
    }
}

TEST(Parallel, OrderedMapFillsSlotsByIndex)
{
    parallel::JobsOverride pin(8);
    const auto squares = parallel::orderedMap<std::size_t>(
        200, [](std::size_t i) { return i * i; });
    ASSERT_EQ(squares.size(), 200u);
    for (std::size_t i = 0; i < squares.size(); ++i)
        EXPECT_EQ(squares[i], i * i);
}

TEST(Parallel, OrderedMapBitIdenticalAcrossJobCounts)
{
    const auto run = [](int jobs_count) {
        parallel::JobsOverride pin(jobs_count);
        return parallel::orderedMap<double>(512, [](std::size_t i) {
            const double x = static_cast<double>(i);
            return std::sin(x) * std::sqrt(x + 1.0) / (x + 0.5);
        });
    };
    const auto serial = run(1);
    const auto parallel8 = run(8);
    ASSERT_EQ(serial.size(), parallel8.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        // Bitwise, not approximate: the determinism contract.
        EXPECT_EQ(serial[i], parallel8[i]) << "slot " << i;
    }
}

TEST(Parallel, OrderedReduceFoldsInIndexOrder)
{
    parallel::JobsOverride pin(8);
    const std::string joined =
        parallel::orderedReduce<std::string, std::string>(
            10, std::string(),
            [](std::size_t i) { return std::to_string(i); },
            [](std::string acc, std::string item) {
                return acc + "," + item;
            });
    EXPECT_EQ(joined, ",0,1,2,3,4,5,6,7,8,9");
}

TEST(Parallel, OrderedReduceFloatSumMatchesSerialBitwise)
{
    const auto run = [](int jobs_count) {
        parallel::JobsOverride pin(jobs_count);
        return parallel::orderedReduce<double, double>(
            1000, 0.0,
            [](std::size_t i) {
                return 1.0 / (static_cast<double>(i) + 1.0);
            },
            [](double acc, double item) { return acc + item; });
    };
    EXPECT_EQ(run(1), run(8));
}

TEST(Parallel, PoolStatsOffByDefaultAndQueueIdle)
{
    EXPECT_FALSE(parallel::poolStatsEnabled());
    EXPECT_EQ(parallel::queueDepth(), 0);
}

/** Toggle pool-stats accounting for one test, restoring on exit. */
class PoolStatsScope
{
  public:
    PoolStatsScope() : was_(parallel::poolStatsEnabled())
    {
        parallel::setPoolStatsEnabled(true);
        parallel::resetPoolStats();
    }
    ~PoolStatsScope()
    {
        parallel::setPoolStatsEnabled(was_);
    }

  private:
    bool was_;
};

TEST(Parallel, PoolStatsCountChunksExactly)
{
    PoolStatsScope stats_on;
    parallel::JobsOverride pin(4);
    constexpr std::size_t n = 200;
    parallel::ForOptions options;
    options.grain = 1; // one chunk per index: counts must be exact
    std::atomic<std::size_t> ran{0};
    parallel::parallelFor(
        n, [&](std::size_t) { ++ran; }, options);
    ASSERT_EQ(ran.load(), n);

    const parallel::PoolStats snapshot = parallel::poolStatsSnapshot();
    std::uint64_t chunks = snapshot.callerChunks;
    for (const std::uint64_t c : snapshot.workerChunks)
        chunks += c;
    // Every executed chunk is attributed exactly once, to the caller
    // or to one worker slot — no double counting, nothing dropped.
    EXPECT_EQ(chunks, n);
    EXPECT_EQ(snapshot.queueDepth, 0);
}

TEST(Parallel, PoolStatsBusyTimeCoversTheWorkload)
{
    PoolStatsScope stats_on;
    parallel::JobsOverride pin(4);
    constexpr std::size_t n = 32;
    constexpr auto napMs = std::chrono::milliseconds(2);
    parallel::ForOptions options;
    options.grain = 1;
    parallel::parallelFor(
        n, [&](std::size_t) { std::this_thread::sleep_for(napMs); },
        options);

    const parallel::PoolStats snapshot = parallel::poolStatsSnapshot();
    std::uint64_t busy_ns = snapshot.callerBusyNs;
    for (const std::uint64_t ns : snapshot.workerBusyNs)
        busy_ns += ns;
    // Summed busy time across participants must cover the sleeps
    // (generous halving: sleep_for may round, clocks may coarsen).
    const std::uint64_t floor_ns = n * 2'000'000ull / 2;
    EXPECT_GE(busy_ns, floor_ns);
}

TEST(Parallel, PoolStatsResetClearsTotals)
{
    PoolStatsScope stats_on;
    parallel::JobsOverride pin(4);
    parallel::parallelFor(64, [](std::size_t) {});
    parallel::resetPoolStats();
    const parallel::PoolStats snapshot = parallel::poolStatsSnapshot();
    EXPECT_EQ(snapshot.callerChunks, 0u);
    EXPECT_EQ(snapshot.callerBusyNs, 0u);
    for (std::size_t i = 0; i < snapshot.workerChunks.size(); ++i) {
        EXPECT_EQ(snapshot.workerChunks[i], 0u) << "slot " << i;
        EXPECT_EQ(snapshot.workerBusyNs[i], 0u) << "slot " << i;
    }
}

TEST(Parallel, PoolRespawnsAfterShutdown)
{
    parallel::JobsOverride pin(4);
    std::atomic<std::size_t> ran{0};
    parallel::parallelFor(32, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 32u);

    parallel::shutdownPool();

    ran = 0;
    parallel::parallelFor(32, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 32u);
}

} // namespace
} // namespace otft
