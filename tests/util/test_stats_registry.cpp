/** @file Unit tests for util/stats_registry. */

#include <gtest/gtest.h>

#include <sstream>

#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/stats_registry.hpp"

namespace otft::stats {
namespace {

TEST(StatsRegistry, CounterRegistrationIsIdempotent)
{
    Counter &a = counter("test.reg.counter", "a test counter");
    Counter &b = counter("test.reg.counter");
    EXPECT_EQ(&a, &b);
    EXPECT_TRUE(Registry::instance().has("test.reg.counter"));
    EXPECT_FALSE(Registry::instance().has("test.reg.missing"));
}

TEST(StatsRegistry, CounterAccumulates)
{
    Counter &c = counter("test.acc.counter");
    c.reset();
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
}

TEST(StatsRegistry, AccumulatorTracksMinMeanMax)
{
    Accumulator &a = accumulator("test.acc.accumulator");
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(3.0);
    a.sample(-1.0);
    a.sample(4.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 6.0);
    EXPECT_DOUBLE_EQ(a.min(), -1.0);
    EXPECT_DOUBLE_EQ(a.max(), 4.0);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(StatsRegistry, HistogramBinsSamples)
{
    Histogram &h =
        histogram("test.acc.histogram", 0.0, 10.0, 5, "5 bins of 2");
    h.reset();
    h.sample(-0.5);  // underflow
    h.sample(0.0);   // bin 0
    h.sample(1.999); // bin 0
    h.sample(2.0);   // bin 1
    h.sample(9.999); // bin 4
    h.sample(10.0);  // overflow (hi is exclusive)
    h.sample(100.0); // overflow
    ASSERT_EQ(h.bins().size(), 5u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bins()[0], 2u);
    EXPECT_EQ(h.bins()[1], 1u);
    EXPECT_EQ(h.bins()[2], 0u);
    EXPECT_EQ(h.bins()[3], 0u);
    EXPECT_EQ(h.bins()[4], 1u);
    EXPECT_EQ(h.totalSamples(), 7u);
}

TEST(StatsRegistry, HistogramPercentilesInterpolateWithinBins)
{
    Histogram &h = histogram("test.pct.histogram", 0.0, 10.0, 5,
                             "percentile check");
    h.reset();
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0); // empty reports lo

    // 50 samples in bin 0 ([0,2)), 50 in bin 1 ([2,4)): the median
    // sits exactly at the bin boundary, p95 90% into bin 1.
    for (int i = 0; i < 50; ++i) {
        h.sample(1.0);
        h.sample(3.0);
    }
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.p50(), 2.0);
    EXPECT_DOUBLE_EQ(h.p95(), 3.8);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 4.0);
    // Out-of-range requests clamp rather than extrapolate.
    EXPECT_DOUBLE_EQ(h.percentile(150.0), 4.0);
    EXPECT_DOUBLE_EQ(h.percentile(-5.0), 0.0);

    // Overflow mass is excluded from the percentile population.
    h.sample(1e9);
    EXPECT_DOUBLE_EQ(h.p50(), 2.0);
}

TEST(StatsRegistry, PercentilesSurviveJsonRoundTrip)
{
    Registry &reg = Registry::instance();
    Histogram &h = histogram("test.pct.roundtrip", 0.0, 8.0, 4);
    h.reset();
    for (int i = 0; i < 10; ++i)
        h.sample(1.0);
    std::stringstream ss;
    reg.dumpJson(ss);
    const Snapshot snap = parseSnapshot(ss);
    const auto it = snap.histograms.find("test.pct.roundtrip");
    ASSERT_NE(it, snap.histograms.end());
    EXPECT_DOUBLE_EQ(it->second.p50, h.p50());
    EXPECT_DOUBLE_EQ(it->second.p95, h.p95());
    EXPECT_GT(it->second.p95, it->second.p50);
}

TEST(StatsRegistry, CounterSnapshotListsOnlyCounters)
{
    Registry &reg = Registry::instance();
    Counter &c = counter("test.snap.counter");
    accumulator("test.snap.accumulator").sample(1.0);
    c.reset();
    c += 5;
    const auto snap = reg.counterSnapshot();
    const auto it = snap.find("test.snap.counter");
    ASSERT_NE(it, snap.end());
    EXPECT_EQ(it->second, 5u);
    EXPECT_EQ(snap.count("test.snap.accumulator"), 0u);
}

TEST(StatsRegistry, KindMismatchIsFatal)
{
    counter("test.kind.scalar");
    EXPECT_THROW(accumulator("test.kind.scalar"), FatalError);
}

TEST(StatsRegistry, RateDividesAtDumpTime)
{
    Registry &reg = Registry::instance();
    Counter &num = counter("test.rate.num");
    Counter &den = counter("test.rate.den");
    num.reset();
    den.reset();
    reg.rate("test.rate.value", "test.rate.num", "test.rate.den");
    EXPECT_DOUBLE_EQ(reg.rateValue("test.rate.value"), 0.0);
    num += 6;
    den += 4;
    EXPECT_DOUBLE_EQ(reg.rateValue("test.rate.value"), 1.5);
    EXPECT_DOUBLE_EQ(reg.rateValue("test.rate.unregistered"), 0.0);
}

TEST(StatsRegistry, ResetZeroesValuesButKeepsRegistrations)
{
    Registry &reg = Registry::instance();
    Counter &c = counter("test.reset.counter");
    Accumulator &a = accumulator("test.reset.accumulator");
    c += 7;
    a.sample(1.25);
    reg.reset();
    EXPECT_TRUE(reg.has("test.reset.counter"));
    EXPECT_TRUE(reg.has("test.reset.accumulator"));
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(&c, &counter("test.reset.counter"));
}

TEST(StatsRegistry, EnableFlagRoundTrips)
{
    Registry &reg = Registry::instance();
    EXPECT_TRUE(reg.enabled());
    reg.setEnabled(false);
    EXPECT_FALSE(enabled());
    reg.setEnabled(true);
    EXPECT_TRUE(enabled());
}

TEST(StatsRegistry, ScopedTimerSamplesOncePerScope)
{
    Accumulator &a = accumulator("test.timer.acc");
    a.reset();
    {
        ScopedTimer t(a);
    }
    EXPECT_EQ(a.count(), 1u);
    EXPECT_GE(a.sum(), 0.0);

    // Disabled: no clock reads, no samples.
    Registry::instance().setEnabled(false);
    {
        ScopedTimer t(a);
    }
    Registry::instance().setEnabled(true);
    EXPECT_EQ(a.count(), 1u);
}

TEST(StatsRegistry, JsonDumpRoundTrips)
{
    Registry &reg = Registry::instance();
    Counter &c = counter("test.json.counter");
    Accumulator &a = accumulator("test.json.accumulator");
    Histogram &h = histogram("test.json.histogram", 0.0, 4.0, 4);
    c.reset();
    a.reset();
    h.reset();
    c += 11;
    a.sample(0.5);
    a.sample(2.5);
    h.sample(-1.0);
    h.sample(1.5);
    h.sample(99.0);
    reg.rate("test.json.rate", "test.json.counter",
             "test.json.accumulator");

    std::stringstream ss;
    reg.dumpJson(ss);
    const Snapshot snap = parseSnapshot(ss);

    EXPECT_DOUBLE_EQ(snap.scalar("test.json.counter"), 11.0);
    EXPECT_DOUBLE_EQ(snap.scalar("test.json.rate"), 11.0 / 3.0);
    EXPECT_DOUBLE_EQ(snap.scalar("test.json.missing", -1.0), -1.0);

    const auto acc_it = snap.accumulators.find("test.json.accumulator");
    ASSERT_NE(acc_it, snap.accumulators.end());
    EXPECT_EQ(acc_it->second.count, 2u);
    EXPECT_DOUBLE_EQ(acc_it->second.sum, 3.0);
    EXPECT_DOUBLE_EQ(acc_it->second.min, 0.5);
    EXPECT_DOUBLE_EQ(acc_it->second.max, 2.5);
    EXPECT_DOUBLE_EQ(acc_it->second.mean, 1.5);

    const auto hist_it = snap.histograms.find("test.json.histogram");
    ASSERT_NE(hist_it, snap.histograms.end());
    EXPECT_DOUBLE_EQ(hist_it->second.lo, 0.0);
    EXPECT_DOUBLE_EQ(hist_it->second.hi, 4.0);
    EXPECT_EQ(hist_it->second.underflow, 1u);
    EXPECT_EQ(hist_it->second.overflow, 1u);
    ASSERT_EQ(hist_it->second.bins.size(), 4u);
    EXPECT_EQ(hist_it->second.bins[1], 1u);
}

TEST(StatsRegistry, TextDumpMentionsNonEmptyNodes)
{
    Counter &c = counter("test.text.counter", "text dump check");
    c.reset();
    c += 3;
    std::stringstream ss;
    Registry::instance().dumpText(ss);
    EXPECT_NE(ss.str().find("test.text.counter"), std::string::npos);
    EXPECT_NE(ss.str().find("text dump check"), std::string::npos);
}

TEST(StatsRegistry, TextDumpShowsHistogramUnderOverflow)
{
    Histogram &h =
        histogram("test.text.histogram", 0.0, 4.0, 4, "tail check");
    h.reset();
    h.sample(-2.0);
    h.sample(1.0);
    h.sample(8.0);
    h.sample(9.0);
    std::stringstream ss;
    Registry::instance().dumpText(ss);
    EXPECT_NE(ss.str().find("under=1"), std::string::npos);
    EXPECT_NE(ss.str().find("over=2"), std::string::npos);
}

TEST(StatsRegistry, DumpJsonEscapesArbitraryNodeNames)
{
    // Nothing restricts node names to identifier characters; the JSON
    // writer must escape them or the whole document is unparseable.
    Counter &c =
        counter("test.json.\"quoted\"\\name", "escaping check");
    c.reset();
    c += 9;
    std::stringstream ss;
    Registry::instance().dumpJson(ss);
    const json::Value doc = json::parse(ss.str());
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.number("test.json.\"quoted\"\\name"), 9.0);
}

TEST(StatsRegistry, InMemorySnapshotMatchesParsedDump)
{
    Registry &reg = Registry::instance();
    Counter &c = counter("test.snap.counter");
    Accumulator &a = accumulator("test.snap.accumulator");
    Histogram &h = histogram("test.snap.histogram", 0.0, 4.0, 4);
    c.reset();
    a.reset();
    h.reset();
    c += 7;
    a.sample(1.0);
    a.sample(3.0);
    h.sample(-1.0);
    h.sample(2.0);
    h.sample(9.0);

    std::stringstream ss;
    reg.dumpJson(ss);
    const Snapshot parsed = parseSnapshot(ss);
    const Snapshot live = reg.snapshot();

    EXPECT_EQ(live.scalar("test.snap.counter"),
              parsed.scalar("test.snap.counter"));
    const auto &la = live.accumulators.at("test.snap.accumulator");
    const auto &pa = parsed.accumulators.at("test.snap.accumulator");
    EXPECT_EQ(la.count, pa.count);
    EXPECT_EQ(la.sum, pa.sum);
    EXPECT_EQ(la.min, pa.min);
    EXPECT_EQ(la.max, pa.max);
    EXPECT_EQ(la.mean, pa.mean);
    const auto &lh = live.histograms.at("test.snap.histogram");
    const auto &ph = parsed.histograms.at("test.snap.histogram");
    EXPECT_EQ(lh.lo, ph.lo);
    EXPECT_EQ(lh.hi, ph.hi);
    EXPECT_EQ(lh.underflow, ph.underflow);
    EXPECT_EQ(lh.overflow, ph.overflow);
    EXPECT_EQ(lh.p50, ph.p50);
    EXPECT_EQ(lh.p95, ph.p95);
    EXPECT_EQ(lh.bins, ph.bins);
}

} // namespace
} // namespace otft::stats
