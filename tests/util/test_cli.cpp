/** @file Unit tests for util/cli (the shared driver shell). */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/perf_report.hpp"

namespace otft::cli {
namespace {

/** Mutable argv for Session's in-place flag consumption. */
class Args
{
  public:
    explicit Args(std::vector<std::string> words) : storage(words)
    {
        for (std::string &w : storage)
            pointers.push_back(w.data());
        pointers.push_back(nullptr);
        argc_ = static_cast<int>(storage.size());
    }

    int &argc() { return argc_; }
    char **argv() { return pointers.data(); }
    const char *at(int i) const { return pointers[static_cast<std::size_t>(i)]; }

  private:
    std::vector<std::string> storage;
    std::vector<char *> pointers;
    int argc_ = 0;
};

/** Clears the OTFT observability environment for the test body. */
class CleanEnv : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setQuiet(true);
        unsetenv("OTFT_STATS");
        unsetenv("OTFT_STATS_JSON");
        unsetenv("OTFT_TRACE_JSON");
        unsetenv("OTFT_JOBS");
        unsetenv("OTFT_BATCH_LANES");
    }

    void
    TearDown() override
    {
        unsetenv("OTFT_STATS");
        unsetenv("OTFT_STATS_JSON");
        unsetenv("OTFT_TRACE_JSON");
        unsetenv("OTFT_JOBS");
        unsetenv("OTFT_BATCH_LANES");
        setQuiet(false);
    }

    std::string
    tmpPath(const char *name) const
    {
        return ::testing::TempDir() + name;
    }
};

using CliSession = CleanEnv;

TEST_F(CliSession, ConsumesObservabilityFlagsOnly)
{
    const std::string stats_path = tmpPath("cli_flags_stats.json");
    Args args({"prog", "--alpha", "--stats-json", stats_path,
               "--stats", "positional"});
    {
        Session session("test", args.argc(), args.argv());
        EXPECT_TRUE(session.statsTextEnabled());
        EXPECT_EQ(session.statsJson(), stats_path);
        EXPECT_TRUE(session.traceJson().empty());
    }
    // The driver's own arguments survive in order.
    ASSERT_EQ(args.argc(), 3);
    EXPECT_STREQ(args.at(0), "prog");
    EXPECT_STREQ(args.at(1), "--alpha");
    EXPECT_STREQ(args.at(2), "positional");
    std::remove(stats_path.c_str());
}

TEST_F(CliSession, EnvironmentFillsInWhenFlagsAbsent)
{
    const std::string env_path = tmpPath("cli_env_stats.json");
    setenv("OTFT_STATS_JSON", env_path.c_str(), 1);
    setenv("OTFT_STATS", "1", 1);
    Args args({"prog"});
    {
        Session session("test", args.argc(), args.argv());
        EXPECT_EQ(session.statsJson(), env_path);
        EXPECT_TRUE(session.statsTextEnabled());
    }
    std::remove(env_path.c_str());
}

TEST_F(CliSession, FlagsTakePrecedenceOverEnvironment)
{
    const std::string env_path = tmpPath("cli_prec_env.json");
    const std::string flag_path = tmpPath("cli_prec_flag.json");
    setenv("OTFT_STATS_JSON", env_path.c_str(), 1);
    setenv("OTFT_STATS", "0", 1);
    Args args({"prog", "--stats-json", flag_path});
    {
        Session session("test", args.argc(), args.argv());
        EXPECT_EQ(session.statsJson(), flag_path);
        // OTFT_STATS=0 means "off", not "set".
        EXPECT_FALSE(session.statsTextEnabled());
    }
    std::remove(flag_path.c_str());
}

TEST_F(CliSession, UnwritableStatsPathIsFatalAtConstruction)
{
    Args args({"prog", "--stats-json",
               "/nonexistent-dir-otft/stats.json"});
    EXPECT_THROW(Session("test", args.argc(), args.argv()),
                 FatalError);
}

TEST_F(CliSession, UnwritableTracePathIsFatalAtConstruction)
{
    Args args({"prog", "--trace-json",
               "/nonexistent-dir-otft/trace.json"});
    EXPECT_THROW(Session("test", args.argc(), args.argv()),
                 FatalError);
}

TEST_F(CliSession, MissingFlagValueIsFatal)
{
    Args args({"prog", "--stats-json"});
    EXPECT_THROW(Session("test", args.argc(), args.argv()),
                 FatalError);
}

TEST_F(CliSession, FooterIsCanonicalParseableJson)
{
    Args args({"prog"});
    ::testing::internal::CaptureStdout();
    {
        Session session("footer_test", args.argc(), args.argv(),
                        Footer::On);
        session.setPoints(21);
        session.addFooterField("f_max_hz", 210.25);
    }
    const std::string out = ::testing::internal::GetCapturedStdout();
    const json::Value footer = json::parse(out);
    EXPECT_EQ(footer.string("bench"), "footer_test");
    EXPECT_EQ(footer.string("schema"), perf::footerSchema);
    EXPECT_GE(footer.number("wall_s"), 0.0);
    EXPECT_DOUBLE_EQ(footer.number("points"), 21.0);
    EXPECT_DOUBLE_EQ(footer.number("f_max_hz"), 210.25);

    // The footer is exactly what perf_suite --ingest consumes.
    std::istringstream is(out);
    const auto ingested = perf::ingestFooters(is);
    ASSERT_EQ(ingested.size(), 1u);
    EXPECT_EQ(ingested[0].name, "bench.footer_test");
    EXPECT_DOUBLE_EQ(ingested[0].counters.at("f_max_hz"), 210.25);
}

TEST_F(CliSession, JobsFlagParsedConsumedAndInstalled)
{
    Args args({"prog", "--jobs", "1", "positional"});
    {
        Session session("test", args.argc(), args.argv());
        EXPECT_EQ(session.jobs(), 1);
        // The resolved count is installed process-wide.
        EXPECT_EQ(parallel::jobs(), 1);
    }
    ASSERT_EQ(args.argc(), 2);
    EXPECT_STREQ(args.at(0), "prog");
    EXPECT_STREQ(args.at(1), "positional");
}

TEST_F(CliSession, JobsDefaultsToHardwareConcurrency)
{
    Args args({"prog"});
    Session session("test", args.argc(), args.argv());
    EXPECT_EQ(session.jobs(), parallel::hardwareJobs());
}

TEST_F(CliSession, JobsAboveHardwareIsClampedNotFatal)
{
    Args args({"prog", "--jobs", "1000000"});
    Session session("test", args.argc(), args.argv());
    EXPECT_EQ(session.jobs(), parallel::hardwareJobs());
}

TEST_F(CliSession, JobsRejectsZeroNegativeAndGarbage)
{
    for (const char *bad : {"0", "-1", "-8", "abc", "3x", "", "2.5"}) {
        Args args({"prog", "--jobs", bad});
        EXPECT_THROW(Session("test", args.argc(), args.argv()),
                     FatalError)
            << "--jobs " << bad;
    }
}

TEST_F(CliSession, JobsMissingValueIsFatal)
{
    Args args({"prog", "--jobs"});
    EXPECT_THROW(Session("test", args.argc(), args.argv()),
                 FatalError);
}

TEST_F(CliSession, JobsEnvironmentFallback)
{
    setenv("OTFT_JOBS", "1", 1);
    Args args({"prog"});
    Session session("test", args.argc(), args.argv());
    EXPECT_EQ(session.jobs(), 1);
}

TEST_F(CliSession, JobsEnvironmentValueIsValidatedToo)
{
    setenv("OTFT_JOBS", "0", 1);
    Args args({"prog"});
    EXPECT_THROW(Session("test", args.argc(), args.argv()),
                 FatalError);
}

TEST_F(CliSession, BatchLanesFlagParsedConsumedAndInstalled)
{
    // Restore the session-wide lane width once the test body exits.
    parallel::BatchLanesOverride restore(parallel::batchLanes());
    Args args({"prog", "--batch-lanes", "4", "positional"});
    {
        Session session("test", args.argc(), args.argv());
        EXPECT_EQ(session.batchLanes(), 4);
        // The resolved width is installed process-wide.
        EXPECT_EQ(parallel::batchLanes(), 4);
    }
    ASSERT_EQ(args.argc(), 2);
    EXPECT_STREQ(args.at(0), "prog");
    EXPECT_STREQ(args.at(1), "positional");
}

TEST_F(CliSession, BatchLanesZeroSelectsScalarEngine)
{
    parallel::BatchLanesOverride restore(parallel::batchLanes());
    Args args({"prog", "--batch-lanes", "0"});
    Session session("test", args.argc(), args.argv());
    EXPECT_EQ(session.batchLanes(), 0);
    EXPECT_EQ(parallel::batchLanes(), 0);
}

TEST_F(CliSession, BatchLanesDefaultsToSessionSetting)
{
    Args args({"prog"});
    Session session("test", args.argc(), args.argv());
    EXPECT_EQ(session.batchLanes(), parallel::batchLanes());
}

TEST_F(CliSession, BatchLanesRejectsNegativeAndGarbage)
{
    for (const char *bad : {"-1", "-8", "abc", "3x", "", "2.5"}) {
        Args args({"prog", "--batch-lanes", bad});
        EXPECT_THROW(Session("test", args.argc(), args.argv()),
                     FatalError)
            << "--batch-lanes " << bad;
    }
}

TEST_F(CliSession, BatchLanesMissingValueIsFatal)
{
    Args args({"prog", "--batch-lanes"});
    EXPECT_THROW(Session("test", args.argc(), args.argv()),
                 FatalError);
}

TEST_F(CliSession, BatchLanesEnvironmentFallback)
{
    parallel::BatchLanesOverride restore(parallel::batchLanes());
    setenv("OTFT_BATCH_LANES", "2", 1);
    Args args({"prog"});
    Session session("test", args.argc(), args.argv());
    EXPECT_EQ(session.batchLanes(), 2);
    EXPECT_EQ(parallel::batchLanes(), 2);
}

TEST_F(CliSession, BatchLanesFlagBeatsEnvironment)
{
    parallel::BatchLanesOverride restore(parallel::batchLanes());
    setenv("OTFT_BATCH_LANES", "2", 1);
    Args args({"prog", "--batch-lanes", "16"});
    Session session("test", args.argc(), args.argv());
    EXPECT_EQ(session.batchLanes(), 16);
    EXPECT_EQ(parallel::batchLanes(), 16);
}

TEST_F(CliSession, JobsFlagBeatsEnvironment)
{
    // The env value is invalid; with the flag present it must never
    // even be parsed.
    setenv("OTFT_JOBS", "not-a-number", 1);
    Args args({"prog", "--jobs", "1"});
    Session session("test", args.argc(), args.argv());
    EXPECT_EQ(session.jobs(), 1);
}

TEST_F(CliSession, StatsJsonIsWrittenOnExit)
{
    const std::string path = tmpPath("cli_exit_stats.json");
    Args args({"prog", "--stats-json", path});
    {
        Session session("test", args.argc(), args.argv());
    }
    std::ifstream is(path);
    ASSERT_TRUE(is.good());
    std::stringstream ss;
    ss << is.rdbuf();
    EXPECT_NE(ss.str().find("{"), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace otft::cli
