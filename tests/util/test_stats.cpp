/** @file Unit tests for util/stats. */

#include <gtest/gtest.h>

#include "util/logging.hpp"
#include "util/stats.hpp"

namespace otft {
namespace {

TEST(FitLine, RecoversExactLine)
{
    const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0, 4.0};
    std::vector<double> ys;
    for (double x : xs)
        ys.push_back(2.5 * x - 1.25);
    const LineFit fit = fitLine(xs, ys);
    EXPECT_NEAR(fit.slope, 2.5, 1e-12);
    EXPECT_NEAR(fit.intercept, -1.25, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitLine, R2DropsWithNoise)
{
    const std::vector<double> xs = {0, 1, 2, 3, 4, 5, 6, 7};
    const std::vector<double> ys = {0.1, 0.9, 2.2, 2.8, 4.3, 4.7,
                                    6.2, 6.9};
    const LineFit fit = fitLine(xs, ys);
    EXPECT_GT(fit.r2, 0.98);
    EXPECT_LT(fit.r2, 1.0);
    EXPECT_NEAR(fit.slope, 1.0, 0.1);
}

TEST(FitLine, SolveForInvertsEval)
{
    const std::vector<double> xs = {0.0, 10.0};
    const std::vector<double> ys = {5.0, 25.0};
    const LineFit fit = fitLine(xs, ys);
    EXPECT_NEAR(fit.solveFor(fit.eval(3.7)), 3.7, 1e-12);
}

TEST(FitLine, RejectsDegenerateInputs)
{
    EXPECT_THROW(fitLine(std::vector<double>{1.0},
                         std::vector<double>{1.0}),
                 FatalError);
    EXPECT_THROW(fitLine(std::vector<double>{1.0, 1.0},
                         std::vector<double>{1.0, 2.0}),
                 FatalError);
    EXPECT_THROW(fitLine(std::vector<double>{1.0, 2.0},
                         std::vector<double>{1.0}),
                 FatalError);
}

TEST(Mean, SimpleValues)
{
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.5);
    EXPECT_THROW(mean(std::vector<double>{}), FatalError);
}

TEST(Stddev, KnownDistribution)
{
    const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0,
                                    7.0, 9.0};
    EXPECT_NEAR(stddev(xs), 2.0, 1e-12);
}

TEST(Interpolate, InsideAndClamped)
{
    const std::vector<double> xs = {0.0, 1.0, 2.0};
    const std::vector<double> ys = {0.0, 10.0, 40.0};
    EXPECT_DOUBLE_EQ(interpolate(xs, ys, 0.5), 5.0);
    EXPECT_DOUBLE_EQ(interpolate(xs, ys, 1.5), 25.0);
    EXPECT_DOUBLE_EQ(interpolate(xs, ys, -1.0), 0.0);
    EXPECT_DOUBLE_EQ(interpolate(xs, ys, 9.0), 40.0);
}

TEST(FindCrossings, RisingAndFalling)
{
    const std::vector<double> xs = {0, 1, 2, 3, 4};
    const std::vector<double> ys = {0, 2, 0, -2, 2};
    const auto crossings = findCrossings(xs, ys, 1.0);
    ASSERT_EQ(crossings.size(), 3u);
    EXPECT_NEAR(crossings[0], 0.5, 1e-12);
    EXPECT_NEAR(crossings[1], 1.5, 1e-12);
    EXPECT_NEAR(crossings[2], 3.75, 1e-12);
}

TEST(Gradient, LinearFunctionIsConstant)
{
    const auto xs = linspace(0.0, 1.0, 11);
    std::vector<double> ys;
    for (double x : xs)
        ys.push_back(3.0 * x + 1.0);
    for (double g : gradient(xs, ys))
        EXPECT_NEAR(g, 3.0, 1e-9);
}

TEST(Linspace, EndpointsExactAndUniform)
{
    const auto xs = linspace(-1.0, 2.0, 7);
    ASSERT_EQ(xs.size(), 7u);
    EXPECT_DOUBLE_EQ(xs.front(), -1.0);
    EXPECT_DOUBLE_EQ(xs.back(), 2.0);
    for (std::size_t i = 1; i < xs.size(); ++i)
        EXPECT_NEAR(xs[i] - xs[i - 1], 0.5, 1e-12);
    EXPECT_THROW(linspace(0.0, 1.0, 1), FatalError);
}

/** Property sweep: interpolation is exact at every sample point. */
class InterpolateAtSamples : public ::testing::TestWithParam<int>
{
};

TEST_P(InterpolateAtSamples, ExactAtKnots)
{
    const int n = GetParam();
    const auto xs = linspace(0.0, 5.0, static_cast<std::size_t>(n));
    std::vector<double> ys;
    for (double x : xs)
        ys.push_back(x * x - 3.0 * x);
    for (std::size_t i = 0; i < xs.size(); ++i)
        EXPECT_NEAR(interpolate(xs, ys, xs[i]), ys[i], 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, InterpolateAtSamples,
                         ::testing::Values(2, 3, 5, 17, 101));

} // namespace
} // namespace otft
