/** @file Property tests for the counter-based stream-splittable RNG. */

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/parallel.hpp"
#include "util/stream_rng.hpp"

namespace otft {
namespace {

TEST(StreamRng, DrawsArePureFunctionsOfSeedKeyAndIndex)
{
    StreamRng a(42, "mc/sample/3");
    StreamRng b(42, "mc/sample/3");
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(StreamRng, PathKeyIsStableAcrossProcessRestarts)
{
    // FNV-1a of a fixed string is a constant — if this changes, every
    // persisted Monte Carlo artifact silently resamples.
    EXPECT_EQ(streamKey(""), 1469598103934665603ULL);
    EXPECT_EQ(streamKey("mc/sample/7/cell/nand2"),
              streamKey("mc/sample/7/cell/nand2"));
    EXPECT_NE(streamKey("mc/sample/7/cell/nand2"),
              streamKey("mc/sample/7/cell/nand3"));
    // Concatenation boundaries matter: "ab"+"c" != "a"+"bc".
    EXPECT_NE(streamKey("abc"), streamKey("ab/c"));
}

TEST(StreamRng, SubstreamsAreIndependentOfDrawPosition)
{
    // Deriving a substream must not consume draws, and the substream
    // must not depend on how many draws its parent has produced.
    StreamRng fresh(7);
    StreamRng advanced(7);
    for (int i = 0; i < 100; ++i)
        advanced.next();
    StreamRng sub_fresh = fresh.substream("cell/inv");
    StreamRng sub_advanced = advanced.substream("cell/inv");
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(sub_fresh.next(), sub_advanced.next());
    EXPECT_EQ(fresh.position(), 0u);
}

TEST(StreamRng, SiblingSubstreamsDiffer)
{
    StreamRng root(1);
    std::set<std::uint64_t> firsts;
    for (std::uint64_t i = 0; i < 256; ++i) {
        StreamRng sub = root.substream(i);
        firsts.insert(sub.next());
    }
    EXPECT_EQ(firsts.size(), 256u);

    StreamRng by_path_a = root.substream("die");
    StreamRng by_path_b = root.substream("cell/inv");
    EXPECT_NE(by_path_a.next(), by_path_b.next());
}

TEST(StreamRng, SeedsGiveDisjointStreams)
{
    StreamRng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 256; ++i)
        if (a.next() == b.next())
            ++equal;
    EXPECT_EQ(equal, 0);
}

TEST(StreamRng, UniformCoversUnitIntervalUniformly)
{
    StreamRng rng(11);
    const int n = 20000;
    int buckets[10] = {};
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        ++buckets[static_cast<int>(u * 10.0)];
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
    for (int b = 0; b < 10; ++b)
        EXPECT_NEAR(buckets[b], n / 10, 5.0 * std::sqrt(n / 10.0));
}

TEST(StreamRng, NormalHasUnitMoments)
{
    StreamRng rng(13);
    const int n = 20000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    EXPECT_NEAR(mean, 0.0, 0.03);
    EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 1.0, 0.03);
}

/** Per-index draws through the worker pool at a given jobs count. */
std::vector<std::uint64_t>
drawsAtJobs(int jobs, const parallel::ForOptions &options = {})
{
    parallel::JobsOverride guard(jobs);
    const StreamRng root(2026, "determinism");
    return parallel::orderedMap<std::uint64_t>(
        512,
        [&](std::size_t i) {
            StreamRng sub = root.substream(i);
            // A couple of draws plus a nested per-device substream,
            // mirroring the MC characterizer's tree.
            const std::uint64_t a = sub.next();
            StreamRng dev = sub.substream("cell/nand2");
            return a ^ dev.next();
        },
        options);
}

TEST(StreamRng, BitIdenticalAcrossJobCounts)
{
    const auto serial = drawsAtJobs(1);
    const auto parallel8 = drawsAtJobs(8);
    EXPECT_EQ(serial, parallel8);
}

TEST(StreamRng, BitIdenticalAcrossChunkingAndGrain)
{
    const auto baseline = drawsAtJobs(4);
    parallel::ForOptions fine;
    fine.grain = 1;
    parallel::ForOptions coarse;
    coarse.grain = 64;
    parallel::ForOptions static_chunks;
    static_chunks.chunking = parallel::Chunking::Static;
    EXPECT_EQ(baseline, drawsAtJobs(4, fine));
    EXPECT_EQ(baseline, drawsAtJobs(4, coarse));
    EXPECT_EQ(baseline, drawsAtJobs(4, static_chunks));
}

} // namespace
} // namespace otft
