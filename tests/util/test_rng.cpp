/** @file Unit tests for util/rng. */

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace otft {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(Rng, UniformRange)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, NormalMomentsMatch)
{
    Rng rng(11);
    double sum = 0.0, sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal(2.0, 3.0);
        sum += x;
        sq += x * x;
    }
    const double m = sum / n;
    const double var = sq / n - m * m;
    EXPECT_NEAR(m, 2.0, 0.05);
    EXPECT_NEAR(var, 9.0, 0.25);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        if (rng.bernoulli(0.3))
            ++hits;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, GeometricMeanApproximatelyRight)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(6.0));
    EXPECT_NEAR(sum / n, 6.0, 0.4);
}

TEST(Rng, GeometricIsAtLeastOne)
{
    Rng rng(19);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(rng.geometric(0.2), 1u);
}

TEST(Rng, UniformIntInRange)
{
    Rng rng(23);
    for (int i = 0; i < 5000; ++i)
        EXPECT_LT(rng.uniformInt(17), 17u);
}

} // namespace
} // namespace otft
