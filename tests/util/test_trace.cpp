/** @file Unit tests for util/trace. */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/stats_registry.hpp"
#include "util/trace.hpp"

namespace otft {
namespace {

void
inner()
{
    OTFT_TRACE_SCOPE("test.span.inner");
}

void
outer()
{
    OTFT_TRACE_SCOPE("test.span.outer");
    inner();
    inner();
}

TEST(Trace, NestedSpansAggregateIntoRegistry)
{
    stats::Accumulator &outer_acc =
        stats::accumulator("time.test.span.outer");
    stats::Accumulator &inner_acc =
        stats::accumulator("time.test.span.inner");
    outer_acc.reset();
    inner_acc.reset();

    outer();

    EXPECT_EQ(outer_acc.count(), 1u);
    EXPECT_EQ(inner_acc.count(), 2u);
    // Inclusive timing: the parent contains its children.
    EXPECT_GE(outer_acc.sum(), inner_acc.sum());
}

TEST(Trace, DisabledTracingHasNoSideEffects)
{
    stats::Accumulator &outer_acc =
        stats::accumulator("time.test.span.outer");
    stats::Accumulator &inner_acc =
        stats::accumulator("time.test.span.inner");
    outer_acc.reset();
    inner_acc.reset();

    stats::Registry::instance().setEnabled(false);
    outer();
    stats::Registry::instance().setEnabled(true);

    EXPECT_EQ(outer_acc.count(), 0u);
    EXPECT_EQ(inner_acc.count(), 0u);
    EXPECT_FALSE(trace::collecting());
    EXPECT_EQ(trace::eventCount(), 0u);
}

TEST(Trace, TimelineCollectionWritesChromeTraceJson)
{
    const std::string path = "test_trace_out.json";

    trace::start(path);
    EXPECT_TRUE(trace::collecting());
    outer();
    EXPECT_EQ(trace::eventCount(), 3u);
    trace::stop();
    EXPECT_FALSE(trace::collecting());
    EXPECT_EQ(trace::eventCount(), 0u);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();
    while (!text.empty() && std::isspace(text.back()))
        text.pop_back();
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.front(), '[');
    EXPECT_EQ(text.back(), ']');
    EXPECT_NE(text.find("\"test.span.outer\""), std::string::npos);
    EXPECT_NE(text.find("\"test.span.inner\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(text.find("\"dur\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(Trace, CollectionWorksEvenWhenStatsDisabled)
{
    stats::Accumulator &outer_acc =
        stats::accumulator("time.test.span.outer");
    outer_acc.reset();
    const std::string path = "test_trace_out2.json";

    stats::Registry::instance().setEnabled(false);
    trace::start(path);
    outer();
    EXPECT_EQ(trace::eventCount(), 3u);
    trace::stop();
    stats::Registry::instance().setEnabled(true);

    // Timeline captured the spans, but the registry stayed untouched.
    EXPECT_EQ(outer_acc.count(), 0u);
    std::remove(path.c_str());
}

} // namespace
} // namespace otft
