/** @file Unit tests for util/logging. */

#include <gtest/gtest.h>

#include "util/logging.hpp"

namespace otft {
namespace {

TEST(Logging, FatalThrowsWithMessage)
{
    setQuiet(true);
    try {
        fatal("bad value ", 42, " in ", "context");
        FAIL() << "fatal() must throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "bad value 42 in context");
    }
    setQuiet(false);
}

TEST(Logging, QuietFlagRoundTrips)
{
    setQuiet(true);
    EXPECT_TRUE(isQuiet());
    setQuiet(false);
    EXPECT_FALSE(isQuiet());
}

TEST(Logging, InformAndWarnDoNotThrow)
{
    setQuiet(true);
    EXPECT_NO_THROW(inform("status ", 1));
    EXPECT_NO_THROW(warn("warning ", 2.5));
    setQuiet(false);
}

} // namespace
} // namespace otft
