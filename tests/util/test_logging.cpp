/** @file Unit tests for util/logging. */

#include <gtest/gtest.h>

#include <cstdlib>

#include "util/logging.hpp"
#include "util/stats_registry.hpp"

namespace otft {
namespace {

TEST(Logging, FatalThrowsWithMessage)
{
    setQuiet(true);
    try {
        fatal("bad value ", 42, " in ", "context");
        FAIL() << "fatal() must throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "bad value 42 in context");
    }
    setQuiet(false);
}

TEST(Logging, QuietFlagRoundTrips)
{
    setQuiet(true);
    EXPECT_TRUE(isQuiet());
    setQuiet(false);
    EXPECT_FALSE(isQuiet());
}

TEST(Logging, InformAndWarnDoNotThrow)
{
    setQuiet(true);
    EXPECT_NO_THROW(inform("status ", 1));
    EXPECT_NO_THROW(warn("warning ", 2.5));
    setQuiet(false);
}

TEST(Logging, LogLevelParsesNamesAndNumbers)
{
    EXPECT_EQ(logLevelFromString("silent"), LogLevel::Silent);
    EXPECT_EQ(logLevelFromString("warn"), LogLevel::Warn);
    EXPECT_EQ(logLevelFromString("info"), LogLevel::Info);
    EXPECT_EQ(logLevelFromString("0"), LogLevel::Silent);
    EXPECT_EQ(logLevelFromString("1"), LogLevel::Warn);
    EXPECT_EQ(logLevelFromString("2"), LogLevel::Info);
    EXPECT_EQ(logLevelFromString("nonsense", LogLevel::Warn),
              LogLevel::Warn);
}

TEST(Logging, QuietOverridesConfiguredLevel)
{
    setLogLevel(LogLevel::Info);
    EXPECT_EQ(effectiveLogLevel(), LogLevel::Info);
    setQuiet(true);
    EXPECT_EQ(effectiveLogLevel(), LogLevel::Silent);
    setQuiet(false);
    EXPECT_EQ(effectiveLogLevel(), LogLevel::Info);
}

TEST(Logging, EnvOverrideSetsInitialLevel)
{
    ::setenv("OTFT_LOG_LEVEL", "warn", 1);
    detail::reloadLogLevelFromEnv();
    EXPECT_EQ(effectiveLogLevel(), LogLevel::Warn);

    ::unsetenv("OTFT_LOG_LEVEL");
    detail::reloadLogLevelFromEnv();
    EXPECT_EQ(effectiveLogLevel(), LogLevel::Info);
}

TEST(Logging, SuppressedWarningsStillCount)
{
    stats::Counter &warnings = stats::counter("log.warnings");
    const std::uint64_t before = warnings.value();
    setQuiet(true);
    warn("suppressed but counted");
    setQuiet(false);
    EXPECT_EQ(warnings.value(), before + 1);
}

} // namespace
} // namespace otft
