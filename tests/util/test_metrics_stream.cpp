/**
 * @file
 * Tests for the metrics time-series: JSONL line serialization (keys
 * escaped, NaN/Inf collapse to 0 per the registry policy), the
 * registry snapshot feeding it, and a full sampler round trip through
 * util/json.
 */

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/json.hpp"
#include "util/metrics_stream.hpp"
#include "util/stats_registry.hpp"

namespace otft::metrics {
namespace {

TEST(MetricsFormat, LineParsesWithSchemaAndOrdering)
{
    stats::Snapshot snap;
    snap.scalars["a.counter"] = 41.0;
    snap.scalars["weird \"key\"\n"] = 2.0;
    stats::SnapshotAccumulator acc;
    acc.count = 3;
    acc.sum = 6.0;
    acc.min = 1.0;
    acc.max = 3.0;
    acc.mean = 2.0;
    snap.accumulators["time.test"] = acc;
    stats::SnapshotHistogram hist;
    hist.lo = 0.0;
    hist.hi = 10.0;
    hist.underflow = 1;
    hist.overflow = 2;
    hist.p50 = 5.0;
    hist.p95 = 9.5;
    hist.bins = {4, 0, 6};
    snap.histograms["test.hist"] = hist;

    const std::string line = formatSampleLine(snap, 7, 123.5);
    EXPECT_EQ(line.find('\n'), std::string::npos);

    const json::Value doc = json::parse(line);
    EXPECT_EQ(doc.string("schema"), metricsSchema);
    EXPECT_EQ(doc.number("seq"), 7.0);
    EXPECT_EQ(doc.number("t_ms"), 123.5);
    EXPECT_EQ(doc.at("scalars").number("a.counter"), 41.0);
    EXPECT_EQ(doc.at("scalars").number("weird \"key\"\n"), 2.0);

    const auto &a = doc.at("accumulators").at("time.test");
    EXPECT_EQ(a.number("count"), 3.0);
    EXPECT_EQ(a.number("mean"), 2.0);

    const auto &h = doc.at("histograms").at("test.hist");
    EXPECT_EQ(h.number("underflow"), 1.0);
    EXPECT_EQ(h.number("overflow"), 2.0);
    ASSERT_EQ(h.at("bins").asArray().size(), 3u);
    EXPECT_EQ(h.at("bins").asArray()[2].asNumber(), 6.0);
}

TEST(MetricsFormat, NonFiniteValuesSerializeAsZero)
{
    stats::Snapshot snap;
    snap.scalars["nan"] = std::numeric_limits<double>::quiet_NaN();
    snap.scalars["inf"] = std::numeric_limits<double>::infinity();
    stats::SnapshotAccumulator acc;
    acc.count = 1;
    acc.sum = -std::numeric_limits<double>::infinity();
    acc.min = std::numeric_limits<double>::quiet_NaN();
    snap.accumulators["a"] = acc;

    const json::Value doc =
        json::parse(formatSampleLine(snap, 0, 0.0));
    EXPECT_EQ(doc.at("scalars").number("nan"), 0.0);
    EXPECT_EQ(doc.at("scalars").number("inf"), 0.0);
    EXPECT_EQ(doc.at("accumulators").at("a").number("sum"), 0.0);
    EXPECT_EQ(doc.at("accumulators").at("a").number("min"), 0.0);
}

TEST(MetricsFormat, RoundTripPreservesFullDoublePrecision)
{
    stats::Snapshot snap;
    const double v = 0.1 + 0.2; // not exactly 0.3 in binary64
    snap.scalars["precise"] = v;
    const json::Value doc =
        json::parse(formatSampleLine(snap, 0, 0.0));
    EXPECT_EQ(doc.at("scalars").number("precise"), v);
}

TEST(MetricsSnapshot, RegistrySnapshotCarriesLiveNodes)
{
    stats::Counter &c = stats::counter(
        "test.metrics.snapshot_counter", "metrics snapshot test");
    c += 5;
    stats::Histogram &h = stats::histogram(
        "test.metrics.snapshot_hist", 0.0, 10.0, 5,
        "metrics snapshot test histogram");
    h.sample(-1.0); // underflow
    h.sample(5.0);
    h.sample(99.0); // overflow

    const stats::Snapshot snap = stats::Registry::instance().snapshot();
    ASSERT_TRUE(snap.scalars.count("test.metrics.snapshot_counter"));
    EXPECT_GE(snap.scalars.at("test.metrics.snapshot_counter"), 5.0);
    ASSERT_TRUE(snap.histograms.count("test.metrics.snapshot_hist"));
    const auto &sh = snap.histograms.at("test.metrics.snapshot_hist");
    EXPECT_GE(sh.underflow, 1u);
    EXPECT_GE(sh.overflow, 1u);
    EXPECT_EQ(sh.lo, 0.0);
    EXPECT_EQ(sh.hi, 10.0);
}

TEST(MetricsSampler, StreamRoundTripsThroughJsonl)
{
    const std::string path = "metrics_stream_test.jsonl";
    ASSERT_FALSE(sampling());
    // A long period keeps the background thread quiet; the test
    // drives sampling explicitly so line counts are deterministic.
    start(path, 60000);
    EXPECT_TRUE(sampling());
    stats::counter("test.metrics.sampler_counter",
                   "sampler round-trip test") += 3;
    sampleNow();
    stop();
    EXPECT_FALSE(sampling());
    EXPECT_EQ(sampleCount(), 3u); // baseline + sampleNow + final

    std::ifstream is(path);
    ASSERT_TRUE(is.good());
    std::vector<json::Value> docs;
    std::string line;
    while (std::getline(is, line))
        if (!line.empty())
            docs.push_back(json::parse(line));
    ASSERT_EQ(docs.size(), 3u);
    double last_t = -1.0;
    for (std::size_t i = 0; i < docs.size(); ++i) {
        EXPECT_EQ(docs[i].string("schema"), metricsSchema);
        EXPECT_EQ(docs[i].number("seq"), static_cast<double>(i));
        const double t = docs[i].number("t_ms", -1.0);
        EXPECT_GE(t, last_t);
        last_t = t;
    }
    // Samples are cumulative: the final line must include the counter
    // bumped mid-run.
    EXPECT_GE(docs.back().at("scalars").number(
                  "test.metrics.sampler_counter"),
              3.0);

    std::remove(path.c_str());
}

TEST(MetricsSampler, StopWithoutStartIsANoOp)
{
    EXPECT_FALSE(sampling());
    stop();
    sampleNow();
    EXPECT_FALSE(sampling());
}

} // namespace
} // namespace otft::metrics
