/**
 * @file
 * Unit tests for the sampling profiler: folded round-trip, labeled
 * stack collection, deterministic stack roots under a parallel pool,
 * pool-stats busy-time accounting, and the disabled-path overhead
 * bound. Timing-sensitive assertions use generous factors — the
 * sampler only needs to catch frames that are held for many periods.
 */

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/json.hpp"
#include "util/parallel.hpp"
#include "util/profiler.hpp"
#include "util/stats_registry.hpp"

namespace otft::prof {
namespace {

/** Hold a labeled frame long enough for many sampler periods. */
void
holdFrame(const char *label, int ms)
{
    FrameGuard guard(label);
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/** The folded stacks of the last collection, as "stack" strings. */
std::vector<std::string>
stackNames()
{
    std::vector<std::string> names;
    for (const FoldedStack &f : Profiler::instance().folded())
        names.push_back(f.stack);
    return names;
}

bool
containsStack(const std::vector<std::string> &names,
              const std::string &needle)
{
    for (const std::string &n : names)
        if (n == needle)
            return true;
    return false;
}

TEST(Profiler, DisabledByDefaultAndGuardsAreInert)
{
    ASSERT_FALSE(enabled());
    Profiler &p = Profiler::instance();
    p.reset();
    {
        FrameGuard guard("test.unsampled");
        BusyScope busy;
    }
    EXPECT_EQ(p.sampleCount(), 0u);
    EXPECT_TRUE(p.folded().empty());
}

TEST(Profiler, CollectsNestedLabeledStacks)
{
    Profiler &p = Profiler::instance();
    Options options;
    options.periodUs = 200;
    ASSERT_TRUE(p.start(options));
    {
        FrameGuard outer("test.outer");
        holdFrame("test.inner", 60);
    }
    p.stop();

    EXPECT_GT(p.sampleCount(), 0u);
    const auto names = stackNames();
    EXPECT_TRUE(
        containsStack(names, "main;test.outer;test.inner"))
        << "stacks: " << ::testing::PrintToString(names);

    // Self lands on the leaf; the outer frame's total covers it.
    std::uint64_t inner_self = 0;
    std::uint64_t outer_total = 0;
    std::uint64_t outer_self = 0;
    for (const FrameTotals &t : p.frameTotals()) {
        if (t.label == "test.inner")
            inner_self = t.self;
        if (t.label == "test.outer") {
            outer_total = t.total;
            outer_self = t.self;
        }
    }
    EXPECT_GT(inner_self, 0u);
    EXPECT_GE(outer_total, inner_self);
    EXPECT_EQ(outer_self, outer_total - inner_self);
}

TEST(Profiler, FoldedOutputRoundTrips)
{
    Profiler &p = Profiler::instance();
    Options options;
    options.periodUs = 200;
    ASSERT_TRUE(p.start(options));
    holdFrame("test.roundtrip", 40);
    p.stop();
    ASSERT_FALSE(p.folded().empty());

    std::stringstream stream;
    p.writeFolded(stream);
    const auto parsed = parseFolded(stream);
    const auto original = p.folded();
    ASSERT_EQ(parsed.size(), original.size());
    for (std::size_t i = 0; i < parsed.size(); ++i) {
        EXPECT_EQ(parsed[i].stack, original[i].stack);
        EXPECT_EQ(parsed[i].count, original[i].count);
    }
}

TEST(Profiler, ParseFoldedSkipsMalformedLines)
{
    std::stringstream stream(
        "main;good 12\n"
        "no trailing count\n"
        "missing_count\n"
        "main;trailing_junk 12x\n"
        " 7\n"
        "main;also_good 3\n");
    const auto parsed = parseFolded(stream);
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].stack, "main;good");
    EXPECT_EQ(parsed[0].count, 12u);
    EXPECT_EQ(parsed[1].stack, "main;also_good");
    EXPECT_EQ(parsed[1].count, 3u);
}

TEST(Profiler, SanitizesSeparatorsInLabels)
{
    Profiler &p = Profiler::instance();
    Options options;
    options.periodUs = 200;
    ASSERT_TRUE(p.start(options));
    holdFrame("bad;label with\tseps", 40);
    p.stop();
    EXPECT_TRUE(containsStack(stackNames(),
                              "main;bad_label_with_seps"))
        << "stacks: "
        << ::testing::PrintToString(stackNames());
}

TEST(Profiler, NestedStartIsRejectedAndKeepsOuterCollection)
{
    Profiler &p = Profiler::instance();
    ASSERT_TRUE(p.start());
    EXPECT_FALSE(p.start());
    EXPECT_TRUE(p.running());
    p.stop();
    p.stop(); // idempotent
    EXPECT_FALSE(p.running());
}

TEST(Profiler, ResetDropsResults)
{
    Profiler &p = Profiler::instance();
    Options options;
    options.periodUs = 200;
    ASSERT_TRUE(p.start(options));
    holdFrame("test.reset", 20);
    p.stop();
    p.reset();
    EXPECT_EQ(p.sampleCount(), 0u);
    EXPECT_TRUE(p.folded().empty());
    EXPECT_TRUE(p.frameTotals().empty());
}

TEST(Profiler, TopReportNamesHotFrames)
{
    Profiler &p = Profiler::instance();
    Options options;
    options.periodUs = 200;
    ASSERT_TRUE(p.start(options));
    holdFrame("test.report", 40);
    p.stop();
    std::ostringstream os;
    p.writeTopReport(os, 5);
    EXPECT_NE(os.str().find("test.report"), std::string::npos)
        << os.str();
    EXPECT_NE(os.str().find("samples"), std::string::npos)
        << os.str();
}

TEST(Profiler, FooterSectionIsValidOtftProf1Json)
{
    Profiler &p = Profiler::instance();
    Options options;
    options.periodUs = 200;
    ASSERT_TRUE(p.start(options));
    holdFrame("test.footer", 40);
    p.stop();

    const json::Value doc = json::parse(p.footerSection(3));
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.string("schema"), profSchema);
    EXPECT_EQ(static_cast<std::uint64_t>(doc.number("samples")),
              p.sampleCount());
    EXPECT_EQ(static_cast<std::uint64_t>(doc.number("period_us")),
              200u);
    ASSERT_TRUE(doc.has("top"));
    const auto &top = doc.at("top").asArray();
    ASSERT_FALSE(top.empty());
    EXPECT_EQ(top.front().string("frame"), "test.footer");
}

TEST(Profiler, StackRootsAreDeterministicUnderJobs8)
{
    Profiler &p = Profiler::instance();
    Options options;
    options.periodUs = 200;
    ASSERT_TRUE(p.start(options));
    {
        parallel::JobsOverride jobs(8);
        parallel::parallelFor(32, [](std::size_t) {
            FrameGuard guard("test.par");
            std::this_thread::sleep_for(
                std::chrono::milliseconds(3));
        });
    }
    p.stop();

    const auto names = stackNames();
    ASSERT_FALSE(names.empty());
    bool saw_par = false;
    for (const std::string &stack : names) {
        const std::string root = stack.substr(0, stack.find(';'));
        // No numeric thread ids: labels must be identical run to run
        // and across job counts.
        EXPECT_TRUE(root == "main" || root == "worker")
            << "unexpected stack root in: " << stack;
        if (stack == "main;test.par" || stack == "worker;test.par")
            saw_par = true;
    }
    EXPECT_TRUE(saw_par)
        << "stacks: " << ::testing::PrintToString(names);
}

TEST(Profiler, PublishesWorkerBusyFractionsForPoolRuns)
{
    auto &busy_fraction = stats::accumulator(
        "parallel.pool.worker_busy_fraction",
        "per-worker busy fraction over one profiler collection");
    const std::uint64_t count_before = busy_fraction.count();

    Profiler &p = Profiler::instance();
    Options options;
    options.periodUs = 200;
    ASSERT_TRUE(p.start(options));
    {
        parallel::JobsOverride jobs(8);
        parallel::parallelFor(64, [](std::size_t) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
        });
    }
    p.stop();

    // One busy-fraction sample per sampled pool worker; at jobs 8 the
    // pool has 7 helpers (the caller participates as "main").
    EXPECT_GT(busy_fraction.count(), count_before);
    EXPECT_GE(busy_fraction.max(), 0.0);
    EXPECT_LE(busy_fraction.max(), 1.0);
}

TEST(Profiler, DisabledPathOverheadIsBounded)
{
    // A fixed workload whose per-item cost dwarfs one relaxed atomic
    // load: the profiled run may pay a push/pop (lock + label copy)
    // per item, but must stay within a generous factor overall.
    const auto workload = [] {
        volatile double sink = 0.0;
        for (int i = 0; i < 4000; ++i) {
            FrameGuard guard("test.overhead");
            double acc = 0.0;
            for (int k = 0; k < 400; ++k)
                acc += static_cast<double>(k) * 1e-3;
            sink = sink + acc;
        }
        return sink;
    };

    workload(); // warm caches
    const std::int64_t t0 = stats::monotonicNowNs();
    workload();
    const std::int64_t unprofiled = stats::monotonicNowNs() - t0;

    Profiler &p = Profiler::instance();
    ASSERT_TRUE(p.start());
    const std::int64_t t1 = stats::monotonicNowNs();
    workload();
    const std::int64_t profiled = stats::monotonicNowNs() - t1;
    p.stop();

    // Generous: 8x plus an absolute floor so scheduler noise on a
    // sub-millisecond baseline cannot flake the bound.
    EXPECT_LT(profiled, 8 * unprofiled + 20'000'000)
        << "unprofiled " << unprofiled << " ns, profiled "
        << profiled << " ns";
}

} // namespace
} // namespace otft::prof
