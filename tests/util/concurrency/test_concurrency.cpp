/**
 * @file
 * Concurrency stress harness for the instrumentation subsystem and
 * the parallel layer. Every test hammers one shared structure from
 * many threads and then asserts *exact* totals — races that drop or
 * double-count updates fail the assertion, and the data races
 * themselves are caught when this binary runs under ThreadSanitizer
 * (scripts/verify.sh --tsan).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/json.hpp"
#include "util/parallel.hpp"
#include "util/stats_registry.hpp"
#include "util/trace.hpp"

namespace otft {
namespace {

constexpr int kThreads = 8;

/** Run fn(t) on kThreads plain std::threads and join them all. */
void
onThreads(const std::function<void(int)> &fn)
{
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&fn, t] { fn(t); });
    for (auto &thread : threads)
        thread.join();
}

TEST(ConcurrencyStress, CounterTotalExactUnderContention)
{
    stats::Counter &counter = stats::counter(
        "test.concurrency.counter", "stress counter");
    counter.reset();

    constexpr std::uint64_t per_thread = 100000;
    onThreads([&](int) {
        for (std::uint64_t i = 0; i < per_thread; ++i)
            ++counter;
    });

    EXPECT_EQ(counter.value(), kThreads * per_thread);
}

TEST(ConcurrencyStress, CounterAddTotalExact)
{
    stats::Counter &counter = stats::counter(
        "test.concurrency.counter_add", "stress counter (+=)");
    counter.reset();

    constexpr std::uint64_t per_thread = 50000;
    onThreads([&](int) {
        for (std::uint64_t i = 0; i < per_thread; ++i)
            counter += 3;
    });

    EXPECT_EQ(counter.value(), kThreads * per_thread * 3);
}

TEST(ConcurrencyStress, AccumulatorMomentsExact)
{
    stats::Accumulator &acc = stats::accumulator(
        "test.concurrency.accumulator", "stress accumulator");
    acc.reset();

    constexpr int per_thread = 20000;
    onThreads([&](int) {
        for (int i = 0; i < per_thread; ++i)
            acc.sample(2.0);
    });

    const auto total =
        static_cast<std::uint64_t>(kThreads) * per_thread;
    EXPECT_EQ(acc.count(), total);
    // Every sample is the same value, so sum/min/max/mean are exact
    // in floating point — any torn or lost update shows up here.
    EXPECT_EQ(acc.sum(), 2.0 * static_cast<double>(total));
    EXPECT_EQ(acc.min(), 2.0);
    EXPECT_EQ(acc.max(), 2.0);
    EXPECT_EQ(acc.mean(), 2.0);
}

TEST(ConcurrencyStress, HistogramSampleCountExact)
{
    stats::Histogram &hist = stats::histogram(
        "test.concurrency.histogram", 0.0, 10.0, 10,
        "stress histogram");
    hist.reset();

    constexpr int per_thread = 20000;
    onThreads([&](int t) {
        for (int i = 0; i < per_thread; ++i)
            hist.sample(static_cast<double>(t) + 0.5);
    });

    const auto total =
        static_cast<std::uint64_t>(kThreads) * per_thread;
    EXPECT_EQ(hist.totalSamples(), total);
    std::uint64_t binned = hist.underflow() + hist.overflow();
    for (std::uint64_t count : hist.binsSnapshot())
        binned += count;
    EXPECT_EQ(binned, total);
    // Each thread hits its own bin with an exact per-thread count.
    const auto bins = hist.binsSnapshot();
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(bins[static_cast<std::size_t>(t)],
                  static_cast<std::uint64_t>(per_thread))
            << "bin " << t;
}

TEST(ConcurrencyStress, RegistryFindOrCreateRacesYieldOneNode)
{
    stats::Registry &registry = stats::Registry::instance();
    std::vector<stats::Counter *> seen(kThreads, nullptr);
    onThreads([&](int t) {
        // All threads race to create the same name; the registry must
        // hand every thread the same node.
        stats::Counter &c = stats::counter(
            "test.concurrency.race_node", "created by whoever wins");
        seen[static_cast<std::size_t>(t)] = &c;
        ++c;
    });
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(seen[static_cast<std::size_t>(t)], seen[0]);
    EXPECT_EQ(seen[0]->value(), static_cast<std::uint64_t>(kThreads));
    EXPECT_TRUE(registry.has("test.concurrency.race_node"));
}

TEST(ConcurrencyStress, DumpWhileWritingStaysValidJson)
{
    stats::Counter &counter = stats::counter(
        "test.concurrency.dump_target", "incremented during dumps");
    counter.reset();

    std::atomic<bool> done{false};
    std::thread writer([&] {
        while (!done.load(std::memory_order_relaxed))
            ++counter;
    });
    // Wait for the writer to be mid-stream before dumping (on a
    // single-core box it may not be scheduled immediately).
    while (counter.value() == 0)
        std::this_thread::yield();

    // Dumps taken mid-write must each be a complete, parseable
    // document: the registry snapshots under its lock.
    for (int rep = 0; rep < 50; ++rep) {
        std::ostringstream os;
        stats::Registry::instance().dumpJson(os);
        const json::Value doc = json::parse(os.str());
        EXPECT_TRUE(doc.isObject());
    }
    done = true;
    writer.join();
    EXPECT_GT(counter.value(), 0u);
}

TEST(ConcurrencyStress, ConcurrentSpansMergeIntoValidTimeline)
{
    const std::string path = "test_concurrency_trace.json";
    trace::start(path);

    constexpr int spans_per_thread = 200;
    onThreads([&](int) {
        for (int i = 0; i < spans_per_thread; ++i) {
            OTFT_TRACE_SCOPE("test.concurrency.span");
        }
    });

    // Plus one span from the main thread so its tid shows up too.
    {
        OTFT_TRACE_SCOPE("test.concurrency.main_span");
    }
    trace::stop();

    std::ifstream is(path);
    ASSERT_TRUE(is.good());
    const json::Value doc = json::parse(is);
    ASSERT_TRUE(doc.isArray());
    const auto &events = doc.asArray();
    EXPECT_EQ(events.size(),
              static_cast<std::size_t>(kThreads * spans_per_thread) +
                  1);

    // Every event is a complete record; the emitting threads keep
    // distinct tids; timestamps are merged in nondecreasing order.
    std::set<double> tids;
    double prev_ts = -1e300;
    for (const auto &event : events) {
        EXPECT_EQ(event.string("ph"), "X");
        EXPECT_GE(event.number("dur", -1.0), 0.0);
        tids.insert(event.number("tid"));
        EXPECT_GE(event.number("ts"), prev_ts);
        prev_ts = event.number("ts");
    }
    EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads) + 1);
    std::remove(path.c_str());
}

TEST(ConcurrencyStress, ParallelForFromManyThreadsAtOnce)
{
    parallel::JobsOverride pin(4);
    constexpr int loops = 8;
    constexpr std::size_t n = 2000;
    std::vector<std::atomic<std::uint64_t>> totals(kThreads);
    // Several threads submit batches to the shared pool concurrently;
    // each must see exactly its own n indices.
    onThreads([&](int t) {
        for (int rep = 0; rep < loops; ++rep)
            parallel::parallelFor(n, [&, t](std::size_t) {
                totals[static_cast<std::size_t>(t)].fetch_add(
                    1, std::memory_order_relaxed);
            });
    });
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(totals[static_cast<std::size_t>(t)].load(),
                  static_cast<std::uint64_t>(loops) * n)
            << "submitter " << t;
}

TEST(ConcurrencyStress, ScopedTimersAggregateExactCounts)
{
    stats::Accumulator &acc = stats::accumulator(
        "time.test.concurrency.timed", "stress span accumulator");
    acc.reset();

    constexpr int per_thread = 500;
    onThreads([&](int) {
        for (int i = 0; i < per_thread; ++i) {
            OTFT_TRACE_SCOPE("test.concurrency.timed");
        }
    });

    EXPECT_EQ(acc.count(), static_cast<std::uint64_t>(kThreads) *
                               per_thread);
    EXPECT_GE(acc.min(), 0.0);
}

} // namespace
} // namespace otft
