/** @file Unit tests for util/table. */

#include <sstream>

#include <gtest/gtest.h>

#include "util/logging.hpp"
#include "util/table.hpp"

namespace otft {
namespace {

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.row().add("x").add(1.5, 3);
    t.row().add("long-name").add(2.25, 3);
    std::ostringstream os;
    t.render(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("long-name"), std::string::npos);
    EXPECT_NE(out.find("2.25"), std::string::npos);
}

TEST(Table, CsvHasCommasAndRows)
{
    Table t({"a", "b"});
    t.row().add(1LL).add(2LL);
    t.row().add(3LL).add(4LL);
    std::ostringstream os;
    t.renderCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(Table, AddBeforeRowIsFatal)
{
    Table t({"a"});
    EXPECT_THROW(t.add("boom"), FatalError);
}

TEST(Table, NumRows)
{
    Table t({"a"});
    EXPECT_EQ(t.numRows(), 0u);
    t.row().add("1");
    t.row().add("2");
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(FormatNumber, Precision)
{
    EXPECT_EQ(formatNumber(3.14159, 3), "3.14");
    EXPECT_EQ(formatNumber(0.0001234, 2), "0.00012");
}

TEST(FormatSi, PicksSensiblePrefixes)
{
    EXPECT_EQ(formatSi(1.36e9, "Hz"), "1.36 GHz");
    EXPECT_EQ(formatSi(200.0, "Hz"), "200 Hz");
    EXPECT_EQ(formatSi(2.5e-3, "s"), "2.5 ms");
    EXPECT_EQ(formatSi(42e-6, "W", 2), "42 uW");
    EXPECT_EQ(formatSi(0.0, "Hz"), "0 Hz");
}

TEST(FormatSi, NegativeValues)
{
    EXPECT_EQ(formatSi(-1.3, "V", 2), "-1.3 V");
}

} // namespace
} // namespace otft
