/** @file Unit tests for util/perf_report. */

#include <gtest/gtest.h>

#include <sstream>

#include "util/logging.hpp"
#include "util/perf_report.hpp"
#include "util/stats_registry.hpp"

namespace otft::perf {
namespace {

TEST(PerfReport, PercentileSortedInterpolatesRanks)
{
    EXPECT_DOUBLE_EQ(percentileSorted({}, 50.0), 0.0);
    EXPECT_DOUBLE_EQ(percentileSorted({7.0}, 95.0), 7.0);
    const std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_DOUBLE_EQ(percentileSorted(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 50.0), 3.0);
    // rank = 0.95 * 4 = 3.8: interpolate between the 4th and 5th.
    EXPECT_DOUBLE_EQ(percentileSorted(v, 95.0), 4.8);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 100.0), 5.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 150.0), 5.0);
}

TEST(PerfReport, SummarizeTimesComputesRobustStats)
{
    const TimingSummary s = summarizeTimes({5.0, 1.0, 3.0});
    EXPECT_EQ(s.reps, 3u);
    EXPECT_DOUBLE_EQ(s.minS, 1.0);
    EXPECT_DOUBLE_EQ(s.medianS, 3.0);
    EXPECT_DOUBLE_EQ(s.meanS, 3.0);
    EXPECT_DOUBLE_EQ(s.totalS, 9.0);
    // Deviations from the median: {2, 0, 2} -> MAD 2.
    EXPECT_DOUBLE_EQ(s.madS, 2.0);
    // Sorted {1, 3, 5}, rank 1.9.
    EXPECT_DOUBLE_EQ(s.p95S, 4.8);
}

TEST(PerfReport, SuiteMeasuresCounterDeltasPerRep)
{
    ScenarioSuite suite;
    suite.add({"test.counting", "test", "bumps a counter",
               [] { stats::counter("test.perf.suite.counter"); },
               []() -> std::uint64_t {
                   stats::counter("test.perf.suite.counter") += 7;
                   return 13;
               }});
    SuiteOptions options;
    options.reps = 2;
    options.warmup = 3;
    const auto results = suite.run(options);
    ASSERT_EQ(results.size(), 1u);
    const ScenarioResult &r = results[0];
    EXPECT_EQ(r.name, "test.counting");
    EXPECT_EQ(r.points, 13u);
    EXPECT_EQ(r.timing.reps, 2u);
    ASSERT_EQ(r.samplesS.size(), 2u);
    // Warmup reps run before the registry reset, so the delta is the
    // measured reps only, normalized per rep.
    const auto it = r.counters.find("test.perf.suite.counter");
    ASSERT_NE(it, r.counters.end());
    EXPECT_DOUBLE_EQ(it->second, 7.0);
}

TEST(PerfReport, SuiteFilterSelectsBySubstring)
{
    ScenarioSuite suite;
    auto noop = []() -> std::uint64_t { return 1; };
    suite.add({"alpha.one", "alpha", "", nullptr, noop});
    suite.add({"beta.two", "beta", "", nullptr, noop});
    SuiteOptions options;
    options.reps = 1;
    options.warmup = 0;
    options.filter = "beta";
    const auto results = suite.run(options);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].name, "beta.two");
}

TEST(PerfReport, DuplicateScenarioNameIsFatal)
{
    ScenarioSuite suite;
    auto noop = []() -> std::uint64_t { return 0; };
    suite.add({"dup.name", "test", "", nullptr, noop});
    EXPECT_THROW(suite.add({"dup.name", "test", "", nullptr, noop}),
                 FatalError);
    EXPECT_THROW(suite.add({"", "test", "", nullptr, noop}),
                 FatalError);
}

/** A two-scenario report with controlled timings and counters. */
BenchReport
makeReport(double median_scale, double arcs)
{
    BenchReport report;
    report.reps = 3;
    report.warmup = 1;
    report.env.gitSha = "abc1234";
    report.env.compiler = "testc++ 1.0";
    report.env.buildType = "Release";
    report.env.os = "TestOS 1";
    report.env.cpuCount = 4;
    report.env.timestampUtc = "2026-01-01T00:00:00Z";

    ScenarioResult fast;
    fast.name = "unit.fast";
    fast.layer = "unit";
    fast.description = "a fast scenario";
    fast.points = 10;
    fast.samplesS = {0.010 * median_scale, 0.011 * median_scale,
                     0.012 * median_scale};
    fast.timing = summarizeTimes(fast.samplesS);
    fast.counters["sta.arcs.evaluated"] = arcs;

    ScenarioResult slow;
    slow.name = "unit.slow";
    slow.layer = "unit";
    slow.description = "a slow scenario";
    slow.points = 99;
    slow.samplesS = {1.0, 1.1, 1.2};
    slow.timing = summarizeTimes(slow.samplesS);

    report.scenarios = {fast, slow};
    return report;
}

TEST(PerfReport, WriteReadRoundTrips)
{
    const BenchReport original = makeReport(1.0, 1000.0);
    std::stringstream ss;
    writeReport(original, ss);
    const BenchReport parsed = readReport(ss);

    EXPECT_EQ(parsed.reps, 3u);
    EXPECT_EQ(parsed.warmup, 1u);
    EXPECT_EQ(parsed.env.gitSha, "abc1234");
    EXPECT_EQ(parsed.env.compiler, "testc++ 1.0");
    EXPECT_EQ(parsed.env.cpuCount, 4);
    ASSERT_EQ(parsed.scenarios.size(), 2u);
    const ScenarioResult &s = parsed.scenarios[0];
    EXPECT_EQ(s.name, "unit.fast");
    EXPECT_EQ(s.layer, "unit");
    EXPECT_EQ(s.points, 10u);
    EXPECT_EQ(s.timing.reps, 3u);
    EXPECT_DOUBLE_EQ(s.timing.medianS, 0.011);
    ASSERT_EQ(s.samplesS.size(), 3u);
    EXPECT_DOUBLE_EQ(s.samplesS[1], 0.011);
    EXPECT_DOUBLE_EQ(s.counters.at("sta.arcs.evaluated"), 1000.0);
}

TEST(PerfReport, ReadRejectsWrongSchema)
{
    std::istringstream bad("{\"schema\": \"other-1\", \"reps\": 1}");
    EXPECT_THROW(readReport(bad), FatalError);
    std::istringstream missing("{\"reps\": 1}");
    EXPECT_THROW(readReport(missing), FatalError);
}

TEST(PerfReport, IngestFootersSkipsNoiseAndKeepsExtras)
{
    std::istringstream is(
        "some log line\n"
        "{\"bench\": \"fig11\", \"schema\": \"otft-bench-footer-1\", "
        "\"wall_s\": 2.5, \"points\": 14, \"f_max_hz\": 210.5}\n"
        "{\"not\": \"a footer\"}\n"
        "{broken json\n"
        "{\"bench\": \"fig13\", \"schema\": \"otft-bench-footer-1\", "
        "\"wall_s\": 0.75, \"points\": 6}\n");
    const auto results = ingestFooters(is);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].name, "bench.fig11");
    EXPECT_EQ(results[0].layer, "bench");
    EXPECT_EQ(results[0].points, 14u);
    EXPECT_DOUBLE_EQ(results[0].timing.medianS, 2.5);
    EXPECT_DOUBLE_EQ(results[0].counters.at("f_max_hz"), 210.5);
    EXPECT_EQ(results[1].name, "bench.fig13");
}

TEST(PerfReport, DiffIdentityIsClean)
{
    const BenchReport report = makeReport(1.0, 1000.0);
    const DiffReport diff = diffReports(report, report);
    EXPECT_EQ(diff.regressions, 0);
    EXPECT_EQ(diff.improvements, 0);
    for (const DiffEntry &entry : diff.entries)
        EXPECT_EQ(entry.status, DiffStatus::Unchanged);
}

TEST(PerfReport, DiffFlagsInjectedSlowdown)
{
    const BenchReport baseline = makeReport(1.0, 1000.0);
    // 1.8x slower and 5% more arc evaluations: both gates trip.
    const BenchReport current = makeReport(1.8, 1050.0);
    const DiffReport diff = diffReports(baseline, current);
    EXPECT_EQ(diff.regressions, 2);
    bool wall_flagged = false;
    bool counter_flagged = false;
    for (const DiffEntry &entry : diff.entries) {
        if (entry.status != DiffStatus::Regressed)
            continue;
        if (entry.scenario == "unit.fast" && entry.metric == "wall_s")
            wall_flagged = true;
        if (entry.metric == "sta.arcs.evaluated")
            counter_flagged = true;
    }
    EXPECT_TRUE(wall_flagged);
    EXPECT_TRUE(counter_flagged);

    // The reverse comparison is an improvement, not a regression.
    const DiffReport reverse = diffReports(current, baseline);
    EXPECT_EQ(reverse.regressions, 0);
    EXPECT_EQ(reverse.improvements, 2);
}

TEST(PerfReport, DiffNoiseGateAbsorbsSmallDrift)
{
    const BenchReport baseline = makeReport(1.0, 1000.0);
    // 4% drift: inside the 10% relative wall gate; the counter moved
    // by less than its 2% floor-of-one gate.
    const BenchReport current = makeReport(1.04, 1000.5);
    const DiffReport diff = diffReports(baseline, current);
    EXPECT_EQ(diff.regressions, 0);
    EXPECT_EQ(diff.improvements, 0);
}

TEST(PerfReport, DiffMadGateWidensForNoisySamples)
{
    BenchReport baseline = makeReport(1.0, 1000.0);
    BenchReport current = makeReport(1.0, 1000.0);
    // Very noisy baseline samples: MAD 0.5 around a 1.0 median. A
    // 1.2x median shift is real by the relative gate but inside
    // 3 x MAD, so it must not be flagged.
    baseline.scenarios[1].samplesS = {0.5, 1.0, 1.5};
    baseline.scenarios[1].timing =
        summarizeTimes(baseline.scenarios[1].samplesS);
    current.scenarios[1].samplesS = {0.7, 1.2, 1.7};
    current.scenarios[1].timing =
        summarizeTimes(current.scenarios[1].samplesS);
    const DiffReport diff = diffReports(baseline, current);
    EXPECT_EQ(diff.regressions, 0);
}

TEST(PerfReport, DiffReportsAddedAndRemovedScenarios)
{
    BenchReport baseline = makeReport(1.0, 1000.0);
    BenchReport current = makeReport(1.0, 1000.0);
    baseline.scenarios[1].name = "unit.retired";
    current.scenarios[1].name = "unit.brand_new";
    const DiffReport diff = diffReports(baseline, current);
    EXPECT_EQ(diff.regressions, 0);
    bool added = false;
    bool removed = false;
    for (const DiffEntry &entry : diff.entries) {
        if (entry.status == DiffStatus::Added)
            added = entry.scenario == "unit.brand_new";
        if (entry.status == DiffStatus::Removed)
            removed = entry.scenario == "unit.retired";
    }
    EXPECT_TRUE(added);
    EXPECT_TRUE(removed);
}

TEST(PerfReport, RenderDiffPrintsVerdicts)
{
    const BenchReport baseline = makeReport(1.0, 1000.0);
    const BenchReport current = makeReport(1.8, 1050.0);
    const DiffReport diff = diffReports(baseline, current);
    std::ostringstream os;
    renderDiff(diff, os);
    EXPECT_NE(os.str().find("REGRESSED"), std::string::npos);
    EXPECT_NE(os.str().find("sta.arcs.evaluated"), std::string::npos);
    EXPECT_NE(os.str().find("2 regression(s)"), std::string::npos);
}

TEST(PerfReport, RenderDiffMarkdownEmitsAGithubTable)
{
    const BenchReport baseline = makeReport(1.0, 1000.0);
    const BenchReport current = makeReport(1.8, 1050.0);
    const DiffReport diff = diffReports(baseline, current);
    std::ostringstream os;
    renderDiffMarkdown(diff, os);
    const std::string text = os.str();
    EXPECT_NE(text.find("| scenario | metric | baseline | current | "
                        "delta | gate | verdict |"),
              std::string::npos);
    EXPECT_NE(text.find("| --- | --- | ---: | ---: | ---: | ---: "
                        "| --- |"),
              std::string::npos);
    // Regressed rows are bolded for PR-comment scannability.
    EXPECT_NE(text.find("**REGRESSED**"), std::string::npos);
    EXPECT_NE(text.find("2 regression(s)"), std::string::npos);

    // Every row must have the same column count or GitHub renders a
    // broken table: count pipes per line.
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty() || line[0] != '|')
            continue;
        std::size_t pipes = 0;
        for (char ch : line)
            pipes += ch == '|' ? 1 : 0;
        EXPECT_EQ(pipes, 8u) << line;
    }
}

TEST(PerfReport, EnvironmentFingerprintIsPopulated)
{
    const EnvFingerprint env = currentEnvironment();
    EXPECT_FALSE(env.compiler.empty());
    EXPECT_FALSE(env.os.empty());
    EXPECT_FALSE(env.timestampUtc.empty());
    EXPECT_GE(env.cpuCount, 1);
    EXPECT_FALSE(env.host.empty());
    EXPECT_GE(env.jobs, 1);
}

TEST(PerfReport, HostAndJobsRoundTripThroughTheReport)
{
    BenchReport original = makeReport(1.0, 1000.0);
    original.env.host = "bench-host-a";
    original.env.jobs = 8;
    std::stringstream ss;
    writeReport(original, ss);
    const BenchReport parsed = readReport(ss);
    EXPECT_EQ(parsed.env.host, "bench-host-a");
    EXPECT_EQ(parsed.env.jobs, 8);
}

TEST(PerfReport, DiffWarnsOnMismatchedEnvironments)
{
    BenchReport baseline = makeReport(1.0, 1000.0);
    BenchReport current = makeReport(1.0, 1000.0);
    baseline.env.host = "bench-host-a";
    current.env.host = "laptop-b";
    baseline.env.jobs = 8;
    current.env.jobs = 2;
    const DiffReport diff = diffReports(baseline, current);
    // Env drift warns; it never turns a clean diff into a failure.
    EXPECT_EQ(diff.regressions, 0);
    ASSERT_GE(diff.envWarnings.size(), 2u);
    bool host_warned = false;
    bool jobs_warned = false;
    for (const std::string &warning : diff.envWarnings) {
        if (warning.find("bench-host-a") != std::string::npos &&
            warning.find("laptop-b") != std::string::npos)
            host_warned = true;
        if (warning.find("jobs") != std::string::npos)
            jobs_warned = true;
    }
    EXPECT_TRUE(host_warned);
    EXPECT_TRUE(jobs_warned);

    // Both renderers surface the warnings.
    std::ostringstream text;
    renderDiff(diff, text);
    EXPECT_NE(text.str().find("warning: env"), std::string::npos);
    std::ostringstream md;
    renderDiffMarkdown(diff, md);
    EXPECT_NE(md.str().find("**warning:**"), std::string::npos);
}

TEST(PerfReport, DiffSkipsEnvChecksForOldReports)
{
    BenchReport baseline = makeReport(1.0, 1000.0);
    BenchReport current = makeReport(1.0, 1000.0);
    // Reports written before the fingerprint grew these fields read
    // back as "unknown"/0 and must not warn against real values.
    baseline.env.host = "unknown";
    baseline.env.jobs = 0;
    current.env.host = "bench-host-a";
    current.env.jobs = 8;
    const DiffReport diff = diffReports(baseline, current);
    EXPECT_TRUE(diff.envWarnings.empty())
        << diff.envWarnings.front();
}

TEST(PerfReport, MatchingEnvironmentsDiffWithoutWarnings)
{
    BenchReport baseline = makeReport(1.0, 1000.0);
    BenchReport current = makeReport(1.0, 1000.0);
    baseline.env.host = "bench-host-a";
    current.env.host = "bench-host-a";
    baseline.env.jobs = 8;
    current.env.jobs = 8;
    const DiffReport diff = diffReports(baseline, current);
    EXPECT_TRUE(diff.envWarnings.empty());
}

} // namespace
} // namespace otft::perf
