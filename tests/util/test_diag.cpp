/**
 * @file
 * Unit tests for the solver diagnostics sink: collector aggregation,
 * thread-local context labels, the per-solve probe ring, the dump
 * registry cap, and the otft-diag-1 JSON export.
 */

#include <cmath>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "util/diag.hpp"
#include "util/json.hpp"

namespace otft::diag {
namespace {

/** Every test runs against a clean, enabled collector. */
class DiagTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        Collector::instance().reset();
        Collector::instance().setEnabled(true);
    }

    void TearDown() override
    {
        Collector::instance().reset();
        Collector::instance().setMaxDumps(32);
        Collector::instance().setEnabled(false);
    }
};

TEST_F(DiagTest, DisabledCollectorKeepsProbesInert)
{
    Collector::instance().setEnabled(false);
    SolveProbe probe(SolveKind::Dc);
    EXPECT_FALSE(probe.active());
    EXPECT_FALSE(probe.wantsDump());
    probe.iteration(0, 1.0, 1.0, false);
    probe.finish(false);
    EXPECT_EQ(Collector::instance().contextCount(), 0u);
    EXPECT_TRUE(probe.trace().empty());
}

TEST_F(DiagTest, ProbePublishesAggregateOnFinish)
{
    {
        ScopedContext ctx("unit.ctx");
        SolveProbe probe(SolveKind::Dc);
        ASSERT_TRUE(probe.active());
        probe.iteration(0, 2.0, 1.0, false);
        probe.iteration(1, 0.5, 0.25, true);
        probe.jacobianRefresh();
        probe.finish(true);
    }
    const ContextStats s =
        Collector::instance().contextStats("unit.ctx");
    EXPECT_EQ(s.solves, 1u);
    EXPECT_EQ(s.failures, 0u);
    EXPECT_EQ(s.iterations, 2u);
    EXPECT_EQ(s.chordIterations, 1u);
    EXPECT_EQ(s.jacobianRefreshes, 1u);
    EXPECT_EQ(s.maxIterations, 2);
    EXPECT_EQ(s.worstFinalResidual, 0.0);
}

TEST_F(DiagTest, FailedSolveTracksWorstResidual)
{
    {
        SolveProbe probe(SolveKind::TransientStep);
        probe.iteration(0, 7.5, 3.0, false);
        probe.finish(false);
    }
    {
        SolveProbe probe(SolveKind::TransientStep);
        probe.iteration(0, 2.0, 1.0, false);
        // Destructor closes an unfinished probe as failed.
    }
    const ContextStats s = Collector::instance().contextStats("");
    EXPECT_EQ(s.solves, 2u);
    EXPECT_EQ(s.failures, 2u);
    EXPECT_EQ(s.worstFinalResidual, 7.5);
    EXPECT_EQ(s.maxIterations, 0);
}

TEST_F(DiagTest, NonFiniteFailureResidualBecomesInfinity)
{
    SolveProbe probe(SolveKind::Dc);
    probe.iteration(0, std::numeric_limits<double>::quiet_NaN(), 1.0,
                    false);
    probe.finish(false);
    const ContextStats s = Collector::instance().contextStats("");
    EXPECT_TRUE(std::isinf(s.worstFinalResidual));
}

TEST_F(DiagTest, ScopedContextNestsWithSlash)
{
    EXPECT_EQ(ScopedContext::current(), "");
    {
        ScopedContext outer("liberty.inv");
        EXPECT_EQ(ScopedContext::current(), "liberty.inv");
        {
            ScopedContext inner("pin0");
            EXPECT_EQ(ScopedContext::current(), "liberty.inv/pin0");
        }
        EXPECT_EQ(ScopedContext::current(), "liberty.inv");
        ScopedContext empty("");
        EXPECT_EQ(ScopedContext::current(), "liberty.inv");
    }
    EXPECT_EQ(ScopedContext::current(), "");
}

TEST_F(DiagTest, EventsAggregateUnderCurrentContext)
{
    ScopedContext ctx("transient.test");
    recordEvent(Event::StepAccept);
    recordEvent(Event::StepAccept);
    recordEvent(Event::StepReject);
    recordEvent(Event::NewtonRetry);
    recordEvent(Event::SourceStepping);
    recordEvent(Event::GminStepping);
    const ContextStats s =
        Collector::instance().contextStats("transient.test");
    EXPECT_EQ(s.stepAccepts, 2u);
    EXPECT_EQ(s.stepRejects, 1u);
    EXPECT_EQ(s.newtonRetries, 1u);
    EXPECT_EQ(s.sourceStepping, 1u);
    EXPECT_EQ(s.gminStepping, 1u);
}

TEST_F(DiagTest, ProbeRingKeepsTheLastIterations)
{
    SolveProbe probe(SolveKind::Dc);
    const int n = static_cast<int>(SolveProbe::ringCapacity) + 10;
    for (int i = 0; i < n; ++i)
        probe.iteration(i, 1.0 / (1 + i), 0.5 / (1 + i), i % 2 == 1);
    const auto trace = probe.trace();
    ASSERT_EQ(trace.size(), SolveProbe::ringCapacity);
    // Chronological order, ending at the final iteration.
    EXPECT_EQ(trace.front().iteration,
              n - static_cast<int>(SolveProbe::ringCapacity));
    EXPECT_EQ(trace.back().iteration, n - 1);
    for (std::size_t i = 1; i < trace.size(); ++i)
        EXPECT_EQ(trace[i].iteration, trace[i - 1].iteration + 1);
    probe.finish(true);
}

TEST_F(DiagTest, DumpRegistryCapsAndDedupes)
{
    Collector &c = Collector::instance();
    c.setMaxDumps(2);
    EXPECT_TRUE(c.recordDump("a.json"));
    EXPECT_TRUE(c.recordDump("a.json")); // dedupe, not a new slot
    EXPECT_TRUE(c.recordDump("b.json"));
    EXPECT_FALSE(c.recordDump("c.json")); // over the cap
    const auto paths = c.dumpPaths();
    ASSERT_EQ(paths.size(), 2u);
    EXPECT_EQ(paths[0], "a.json");
    EXPECT_EQ(paths[1], "b.json");
}

TEST_F(DiagTest, DumpJsonRoundTripsThroughParser)
{
    Collector &c = Collector::instance();
    c.setAttribute("explorer.seed", 42.0);
    c.setAttribute("weird \"key\"\n", 1.0);
    {
        ScopedContext ctx("ctx.a");
        SolveProbe probe(SolveKind::Dc);
        probe.iteration(0, 1.0, 0.5, false);
        probe.finish(true);
    }
    {
        SolveProbe probe(SolveKind::Dc);
        probe.iteration(0, 3.0, 2.0, false);
        probe.finish(false);
    }
    c.setMaxDumps(1);
    EXPECT_TRUE(c.recordDump("dumps/dump_1.json"));
    EXPECT_FALSE(c.recordDump("dumps/dump_2.json"));

    std::ostringstream os;
    c.dumpJson(os);
    const json::Value doc = json::parse(os.str());
    EXPECT_EQ(doc.string("schema"), diagSchema);
    EXPECT_EQ(doc.at("attributes").number("explorer.seed"), 42.0);
    EXPECT_EQ(doc.at("attributes").number("weird \"key\"\n"), 1.0);

    const auto &contexts = doc.at("contexts");
    ASSERT_TRUE(contexts.has("ctx.a"));
    EXPECT_EQ(contexts.at("ctx.a").number("solves"), 1.0);
    EXPECT_EQ(contexts.at("ctx.a").number("failures"), 0.0);
    ASSERT_TRUE(contexts.has("(unlabeled)"));
    EXPECT_EQ(contexts.at("(unlabeled)").number("failures"), 1.0);
    EXPECT_EQ(contexts.at("(unlabeled)")
                  .number("worst_final_residual"),
              3.0);

    EXPECT_EQ(doc.number("dumps_skipped"), 1.0);
    ASSERT_EQ(doc.at("dumps").asArray().size(), 1u);
    EXPECT_EQ(doc.at("dumps").asArray()[0].asString(),
              "dumps/dump_1.json");
}

TEST_F(DiagTest, ResetDropsEverything)
{
    Collector &c = Collector::instance();
    c.setAttribute("k", 1.0);
    c.recordEvent("ctx", Event::StepAccept);
    c.recordDump("d.json");
    c.reset();
    EXPECT_EQ(c.contextCount(), 0u);
    EXPECT_TRUE(c.dumpPaths().empty());
    EXPECT_TRUE(c.attributes().empty());
    EXPECT_TRUE(c.enabled()); // reset clears data, not configuration
}

} // namespace
} // namespace otft::diag
