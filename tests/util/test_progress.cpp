/**
 * @file
 * Unit tests for the progress reporter: counting, the status line,
 * and the median-based watchdog. Rendering itself is policy-gated
 * (OTFT_PROGRESS / TTY detection), so the tests exercise the
 * rendering-independent surface that drives it.
 */

#include <chrono>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "util/progress.hpp"

namespace otft::progress {
namespace {

Options
quietOptions(std::size_t total)
{
    Options o;
    o.label = "test.sweep";
    o.total = total;
    return o;
}

TEST(Progress, CountsCompletedItems)
{
    Reporter reporter(quietOptions(4));
    EXPECT_EQ(reporter.completed(), 0u);
    reporter.itemDone(0.0);
    reporter.itemDone(0.0);
    EXPECT_EQ(reporter.completed(), 2u);
    reporter.done();
    EXPECT_EQ(reporter.completed(), 2u);
}

TEST(Progress, LineShowsLabelCountAndPercent)
{
    Reporter reporter(quietOptions(10));
    for (int i = 0; i < 5; ++i)
        reporter.itemDone(0.0);
    const std::string line = reporter.line();
    EXPECT_NE(line.find("test.sweep: 5/10"), std::string::npos)
        << line;
    EXPECT_NE(line.find("(50%)"), std::string::npos) << line;
    EXPECT_NE(line.find("/s"), std::string::npos) << line;
}

TEST(Progress, LineWithoutTotalOmitsPercent)
{
    Reporter reporter(quietOptions(0));
    reporter.itemDone(0.0);
    const std::string line = reporter.line();
    EXPECT_NE(line.find("test.sweep: 1"), std::string::npos) << line;
    EXPECT_EQ(line.find("%"), std::string::npos) << line;
}

TEST(Progress, WatchdogFlagsOutliersPastTheMedian)
{
    Options o = quietOptions(0);
    o.watchdogMultiple = 8.0;
    o.watchdogMinSamples = 4;
    Reporter reporter(o);
    // Build up a stable median of ~10 ms.
    for (int i = 0; i < 6; ++i)
        reporter.itemDone(0.010);
    EXPECT_EQ(reporter.watchdogFlags(), 0u);
    // 1 s against a 10 ms median is far past 8x.
    reporter.itemDone(1.0);
    EXPECT_EQ(reporter.watchdogFlags(), 1u);
    // Normal tasks afterwards stay unflagged.
    reporter.itemDone(0.011);
    EXPECT_EQ(reporter.watchdogFlags(), 1u);
}

TEST(Progress, WatchdogWaitsForMinSamples)
{
    Options o = quietOptions(0);
    o.watchdogMultiple = 2.0;
    o.watchdogMinSamples = 8;
    Reporter reporter(o);
    // Outliers among the first minSamples-1 items never flag: the
    // median is not trustworthy yet.
    for (int i = 0; i < 7; ++i)
        reporter.itemDone(i == 3 ? 5.0 : 0.010);
    EXPECT_EQ(reporter.watchdogFlags(), 0u);
}

TEST(Progress, WatchdogDisabledByNonPositiveMultiple)
{
    Options o = quietOptions(0);
    o.watchdogMultiple = 0.0;
    o.watchdogMinSamples = 1;
    Reporter reporter(o);
    for (int i = 0; i < 4; ++i)
        reporter.itemDone(0.001);
    reporter.itemDone(100.0);
    EXPECT_EQ(reporter.watchdogFlags(), 0u);
}

TEST(Progress, ZeroDurationsSkipTheWatchdogSampleSet)
{
    Options o = quietOptions(0);
    o.watchdogMultiple = 2.0;
    o.watchdogMinSamples = 2;
    Reporter reporter(o);
    // Unknown durations (0) must neither flag nor poison the median.
    for (int i = 0; i < 10; ++i)
        reporter.itemDone(0.0);
    EXPECT_EQ(reporter.watchdogFlags(), 0u);
    EXPECT_EQ(reporter.completed(), 10u);
}

TEST(Progress, SmoothedRateWaitsForTheFirstWindow)
{
    Reporter reporter(quietOptions(0));
    // Ticks inside the minimum window accumulate without closing it.
    reporter.itemDone(0.0);
    reporter.itemDone(0.0);
    EXPECT_EQ(reporter.smoothedRate(), 0.0);
    // Cross the window: the first EWMA sample seeds from all pending
    // items at once.
    std::this_thread::sleep_for(std::chrono::milliseconds(70));
    reporter.itemDone(0.0);
    EXPECT_GT(reporter.smoothedRate(), 0.0);
}

TEST(Progress, SmoothedRateDisabledByNonPositiveTau)
{
    Options o = quietOptions(0);
    o.rateTauS = 0.0;
    Reporter reporter(o);
    std::this_thread::sleep_for(std::chrono::milliseconds(70));
    reporter.itemDone(0.0);
    EXPECT_EQ(reporter.smoothedRate(), 0.0);
    // The status line still shows the raw rate.
    EXPECT_NE(reporter.line().find("/s"), std::string::npos);
}

TEST(Progress, SmoothedRateDampsABurstAfterIdle)
{
    Options o = quietOptions(0);
    o.rateTauS = 5.0;
    Reporter reporter(o);
    // Seed a slow rate: one item over ~70 ms.
    std::this_thread::sleep_for(std::chrono::milliseconds(70));
    reporter.itemDone(0.0);
    const double seeded = reporter.smoothedRate();
    ASSERT_GT(seeded, 0.0);
    // Burst 200 items (they accumulate as one pending window), then
    // close the window with a final tick: the EWMA moves up, but the
    // long time constant keeps it far below the burst's
    // items-per-window rate (thousands per second here).
    for (int i = 0; i < 200; ++i)
        reporter.itemDone(0.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(70));
    reporter.itemDone(0.0);
    const double smoothed = reporter.smoothedRate();
    EXPECT_GT(smoothed, seeded);
    EXPECT_LT(smoothed, 500.0);
}

TEST(Progress, DoneIsIdempotentAndDestructorSafe)
{
    {
        Reporter reporter(quietOptions(2));
        reporter.itemDone(0.0);
        reporter.done();
        reporter.done();
        // Destructor calls done() again; must not crash or double
        // count.
        EXPECT_EQ(reporter.completed(), 1u);
    }
}

} // namespace
} // namespace otft::progress
