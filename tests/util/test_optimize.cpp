/** @file Unit tests for util/optimize. */

#include <cmath>

#include <gtest/gtest.h>

#include "util/optimize.hpp"

namespace otft {
namespace {

TEST(NelderMead, MinimizesQuadraticBowl)
{
    const auto result = nelderMead(
        [](const std::vector<double> &x) {
            return (x[0] - 3.0) * (x[0] - 3.0) +
                   2.0 * (x[1] + 1.0) * (x[1] + 1.0);
        },
        {0.0, 0.0});
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(result.x[0], 3.0, 1e-3);
    EXPECT_NEAR(result.x[1], -1.0, 1e-3);
    EXPECT_LT(result.value, 1e-5);
}

TEST(NelderMead, RosenbrockTwoDim)
{
    NelderMeadOptions options;
    options.maxEvals = 20000;
    options.tolerance = 1e-14;
    const auto result = nelderMead(
        [](const std::vector<double> &x) {
            const double a = 1.0 - x[0];
            const double b = x[1] - x[0] * x[0];
            return a * a + 100.0 * b * b;
        },
        {-1.2, 1.0}, options);
    EXPECT_NEAR(result.x[0], 1.0, 1e-2);
    EXPECT_NEAR(result.x[1], 1.0, 2e-2);
}

TEST(NelderMead, RespectsEvaluationBudget)
{
    int evals = 0;
    NelderMeadOptions options;
    options.maxEvals = 57;
    nelderMead(
        [&](const std::vector<double> &x) {
            ++evals;
            return x[0] * x[0];
        },
        {5.0}, options);
    EXPECT_LE(evals, 57 + 2); // small overshoot from shrink step
}

TEST(NelderMead, OneDimensional)
{
    const auto result = nelderMead(
        [](const std::vector<double> &x) {
            return std::cos(x[0]) + 0.01 * x[0] * x[0];
        },
        {2.0});
    // Near pi where cos has its minimum (quadratic term shifts it a
    // little toward zero).
    EXPECT_NEAR(result.x[0], 3.03, 0.1);
}

TEST(GoldenSection, FindsParabolaMinimum)
{
    const double x = goldenSection(
        [](double v) { return (v - 0.7) * (v - 0.7); }, -10.0, 10.0);
    EXPECT_NEAR(x, 0.7, 1e-6);
}

TEST(GoldenSection, HandlesReversedBounds)
{
    const double x = goldenSection(
        [](double v) { return std::abs(v - 2.0); }, 5.0, 0.0);
    EXPECT_NEAR(x, 2.0, 1e-6);
}

/** Property: minimizing |x - target| recovers the target. */
class GoldenSectionTargets : public ::testing::TestWithParam<double>
{
};

TEST_P(GoldenSectionTargets, RecoversTarget)
{
    const double target = GetParam();
    const double x = goldenSection(
        [&](double v) { return (v - target) * (v - target); }, -100.0,
        100.0, 1e-8);
    EXPECT_NEAR(x, target, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Targets, GoldenSectionTargets,
                         ::testing::Values(-50.0, -1.0, 0.0, 0.3,
                                           17.5, 99.0));

} // namespace
} // namespace otft
