/**
 * @file
 * Unit tests for the content-addressed result cache: key hashing,
 * LRU behavior, enable/disable semantics, JSON persistence
 * round-trips, and resilience against mangled cache files.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/result_cache.hpp"
#include "util/trace.hpp"

namespace otft::cache {
namespace {

/**
 * The cache under test is the process-wide singleton; each fixture
 * run starts from a clean, memory-only configuration and restores it
 * afterwards so the other test_util suites never see leftovers.
 */
class ResultCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto &c = ResultCache::instance();
        c.setEnabled(true);
        c.setCapacity(65536);
        c.clear();
    }

    void
    TearDown() override
    {
        auto &c = ResultCache::instance();
        c.setDirectory("");
        c.setEnabled(true);
        c.setCapacity(65536);
        c.clear();
        if (!tempDir.empty())
            std::filesystem::remove_all(tempDir);
    }

    /** A fresh per-test scratch directory. */
    std::string
    makeTempDir(const std::string &tag)
    {
        const auto dir = std::filesystem::temp_directory_path() /
                         ("otft_cache_test_" + tag);
        std::filesystem::remove_all(dir);
        tempDir = dir.string();
        return tempDir;
    }

    std::string tempDir;
};

TEST_F(ResultCacheTest, KeyHasherSeparatesInputs)
{
    const auto digest_of = [](auto &&fill) {
        KeyHasher h;
        fill(h);
        return h.digest();
    };
    const std::uint64_t a =
        digest_of([](KeyHasher &h) { h.add("salt").add(1.0); });
    const std::uint64_t b =
        digest_of([](KeyHasher &h) { h.add("salt").add(2.0); });
    const std::uint64_t c =
        digest_of([](KeyHasher &h) { h.add("tlas").add(1.0); });
    EXPECT_NE(a, b);
    EXPECT_NE(a, c);
    EXPECT_NE(b, c);

    // Same content, same digest.
    EXPECT_EQ(digest_of([](KeyHasher &h) { h.add("salt").add(1.0); }),
              a);
}

TEST_F(ResultCacheTest, KeyHasherNormalizesNegativeZero)
{
    KeyHasher pos, neg;
    pos.add(0.0);
    neg.add(-0.0);
    EXPECT_EQ(pos.digest(), neg.digest());
}

TEST_F(ResultCacheTest, KeyHasherLengthPrefixPreventsSplicing)
{
    // "ab" + "c" must not collide with "a" + "bc".
    KeyHasher split_a, split_b;
    split_a.add("ab").add("c");
    split_b.add("a").add("bc");
    EXPECT_NE(split_a.digest(), split_b.digest());

    // Vector boundaries are prefixed the same way.
    KeyHasher vec_a, vec_b;
    vec_a.add(std::vector<double>{1.0, 2.0}).add(
        std::vector<double>{3.0});
    vec_b.add(std::vector<double>{1.0}).add(
        std::vector<double>{2.0, 3.0});
    EXPECT_NE(vec_a.digest(), vec_b.digest());
}

TEST_F(ResultCacheTest, StoreThenLookupRoundTrips)
{
    auto &c = ResultCache::instance();
    const std::vector<double> payload = {1.5, -2.25, 3.0e-300};
    c.store("test.domain", 42, payload);

    std::vector<double> out;
    ASSERT_TRUE(c.lookup("test.domain", 42, out));
    EXPECT_EQ(out, payload);

    // Different key or domain: miss.
    EXPECT_FALSE(c.lookup("test.domain", 43, out));
    EXPECT_FALSE(c.lookup("other.domain", 42, out));
}

TEST_F(ResultCacheTest, StoreOverwritesExistingEntry)
{
    auto &c = ResultCache::instance();
    c.store("test.domain", 7, {1.0});
    c.store("test.domain", 7, {2.0});
    EXPECT_EQ(c.size(), 1u);
    std::vector<double> out;
    ASSERT_TRUE(c.lookup("test.domain", 7, out));
    EXPECT_EQ(out, std::vector<double>({2.0}));
}

TEST_F(ResultCacheTest, LruEvictsOldestAtCapacity)
{
    auto &c = ResultCache::instance();
    c.setCapacity(3);
    c.store("d", 1, {1.0});
    c.store("d", 2, {2.0});
    c.store("d", 3, {3.0});

    // Touch key 1 so key 2 becomes the LRU victim.
    std::vector<double> out;
    ASSERT_TRUE(c.lookup("d", 1, out));
    c.store("d", 4, {4.0});

    EXPECT_EQ(c.size(), 3u);
    EXPECT_TRUE(c.lookup("d", 1, out));
    EXPECT_FALSE(c.lookup("d", 2, out));
    EXPECT_TRUE(c.lookup("d", 3, out));
    EXPECT_TRUE(c.lookup("d", 4, out));
}

TEST_F(ResultCacheTest, ShrinkingCapacityEvictsImmediately)
{
    auto &c = ResultCache::instance();
    for (std::uint64_t k = 0; k < 10; ++k)
        c.store("d", k, {static_cast<double>(k)});
    c.setCapacity(2);
    EXPECT_EQ(c.size(), 2u);
}

TEST_F(ResultCacheTest, DisabledCacheMissesAndDropsStores)
{
    auto &c = ResultCache::instance();
    c.store("d", 1, {1.0});
    c.setEnabled(false);

    std::vector<double> out;
    EXPECT_FALSE(c.lookup("d", 1, out));
    c.store("d", 2, {2.0});

    // Entries stored while enabled survive a disable/enable cycle.
    c.setEnabled(true);
    EXPECT_TRUE(c.lookup("d", 1, out));
    EXPECT_FALSE(c.lookup("d", 2, out));
}

TEST_F(ResultCacheTest, PersistenceRoundTripsExactBits)
{
    const std::string dir = makeTempDir("roundtrip");
    auto &c = ResultCache::instance();
    c.setDirectory(dir);

    // Values chosen to stress %.17g round-tripping.
    const std::vector<double> payload = {
        0.1, 1.0 / 3.0, 6.02214076e23, -2.2250738585072014e-308};
    c.store("liberty.arcpoint", 0xdeadbeefull, payload);
    c.flush();

    // Reload into a cold cache.
    c.clear();
    c.setDirectory(dir);
    std::vector<double> out;
    ASSERT_TRUE(c.lookup("liberty.arcpoint", 0xdeadbeefull, out));
    ASSERT_EQ(out.size(), payload.size());
    for (std::size_t i = 0; i < payload.size(); ++i)
        EXPECT_EQ(out[i], payload[i]) << "index " << i;
}

TEST_F(ResultCacheTest, CorruptCacheFilesAreIgnoredNotFatal)
{
    const std::string dir = makeTempDir("corrupt");
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/result_cache.json";

    // Fuzz-ish set of mangled files: none may throw, all must leave
    // the cache empty and usable.
    const char *variants[] = {
        "",                                       // empty file
        "{",                                      // truncated object
        "not json at all",                        // garbage
        "[1, 2, 3]",                              // wrong top type
        "{\"schema\": \"something-else\"}",       // wrong schema
        "{\"schema\": \"otft-result-cache-1\", "
        "\"entries\": {\"d:0\": [1.0, ",          // truncated entry
        "{\"schema\": \"otft-result-cache-1\", "
        "\"entries\": {\"d:0\": \"oops\"}}",      // non-array payload
        "{\"schema\": \"otft-result-cache-1\", "
        "\"entries\": {\"d:0\": [true, null]}}",  // non-numeric items
    };
    auto &c = ResultCache::instance();
    for (const char *text : variants) {
        {
            std::ofstream os(path);
            os << text;
        }
        c.setDirectory("");
        c.clear();
        EXPECT_NO_THROW(c.setDirectory(dir)) << "input: " << text;
        EXPECT_EQ(c.size(), 0u) << "input: " << text;

        // The cache must stay fully usable afterwards.
        c.store("d", 9, {9.0});
        std::vector<double> out;
        EXPECT_TRUE(c.lookup("d", 9, out));
        c.clear();
    }
}

TEST_F(ResultCacheTest, MalformedEntriesSkippedGoodOnesKept)
{
    const std::string dir = makeTempDir("partial");
    std::filesystem::create_directories(dir);
    {
        std::ofstream os(dir + "/result_cache.json");
        os << "{\"schema\": \"otft-result-cache-1\", \"entries\": {"
           << "\"d:0000000000000001\": [1.5], "
           << "\"d:0000000000000002\": \"bad\", "
           << "\"d:0000000000000003\": [3.5, 4.5]}}";
    }
    auto &c = ResultCache::instance();
    c.setDirectory(dir);
    EXPECT_EQ(c.size(), 2u);
    std::vector<double> out;
    EXPECT_TRUE(c.lookup("d", 1, out));
    EXPECT_EQ(out, std::vector<double>({1.5}));
    EXPECT_FALSE(c.lookup("d", 2, out));
    EXPECT_TRUE(c.lookup("d", 3, out));
    EXPECT_EQ(out, std::vector<double>({3.5, 4.5}));
}

TEST_F(ResultCacheTest, FreeFunctionsUseTheSingleton)
{
    store("free.fn", 5, {5.5});
    std::vector<double> out;
    EXPECT_TRUE(lookup("free.fn", 5, out));
    EXPECT_EQ(out, std::vector<double>({5.5}));
    EXPECT_EQ(ResultCache::instance().size(), 1u);
}

TEST_F(ResultCacheTest, TimelineRecordsHitMissAndEvictEvents)
{
    const std::string path = makeTempDir("trace") + "/timeline.json";
    std::filesystem::create_directories(tempDir);
    auto &c = ResultCache::instance();
    c.setCapacity(2);

    trace::start(path);
    std::vector<double> out;
    const std::size_t base = trace::eventCount();
    EXPECT_FALSE(c.lookup("t", 1, out)); // miss (+ lookup span)
    const std::size_t after_miss = trace::eventCount();
    EXPECT_GE(after_miss - base, 2u);

    c.store("t", 1, {1.0});
    EXPECT_TRUE(c.lookup("t", 1, out)); // hit (+ lookup span)
    const std::size_t after_hit = trace::eventCount();
    EXPECT_GE(after_hit - after_miss, 2u);

    c.store("t", 2, {2.0});
    c.store("t", 3, {3.0}); // capacity 2: evicts the LRU entry
    const std::size_t after_evict = trace::eventCount();
    EXPECT_GE(after_evict - after_hit, 1u);

    trace::stop();

    // The emitted timeline names the cache decisions.
    std::ifstream is(path);
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("cache.miss"), std::string::npos);
    EXPECT_NE(text.find("cache.hit"), std::string::npos);
    EXPECT_NE(text.find("cache.evict"), std::string::npos);
}

TEST_F(ResultCacheTest, NoTimelineEventsWhenNotCollecting)
{
    ASSERT_FALSE(trace::collecting());
    auto &c = ResultCache::instance();
    std::vector<double> out;
    const std::size_t before = trace::eventCount();
    c.store("quiet", 1, {1.0});
    EXPECT_TRUE(c.lookup("quiet", 1, out));
    EXPECT_EQ(trace::eventCount(), before);
}

} // namespace
} // namespace otft::cache
