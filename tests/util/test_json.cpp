/** @file Unit tests for util/json. */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace otft::json {
namespace {

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(parse("null").isNull());
    EXPECT_TRUE(parse("true").asBool());
    EXPECT_FALSE(parse("false").asBool());
    EXPECT_DOUBLE_EQ(parse("42").asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(parse("-1.5e3").asNumber(), -1500.0);
    EXPECT_EQ(parse("\"hi\"").asString(), "hi");
}

TEST(Json, ParsesNestedDocument)
{
    const Value v = parse(
        "{\"name\": \"suite\", \"reps\": 3, "
        "\"wall\": {\"median\": 0.25}, "
        "\"samples\": [0.2, 0.25, 0.3], \"ok\": true}");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.string("name"), "suite");
    EXPECT_DOUBLE_EQ(v.number("reps"), 3.0);
    EXPECT_DOUBLE_EQ(v.at("wall").number("median"), 0.25);
    const auto &samples = v.at("samples").asArray();
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_DOUBLE_EQ(samples[1].asNumber(), 0.25);
    EXPECT_TRUE(v.at("ok").asBool());
}

TEST(Json, StringEscapesRoundTrip)
{
    const Value v =
        parse("\"tab\\t quote\\\" back\\\\ newline\\n u\\u0041\"");
    EXPECT_EQ(v.asString(), "tab\t quote\" back\\ newline\n uA");
}

TEST(Json, EscapeProducesParseableStrings)
{
    const std::string raw = "a\"b\\c\nd\te";
    const Value v = parse("\"" + escape(raw) + "\"");
    EXPECT_EQ(v.asString(), raw);
}

TEST(Json, MissingMembersUseFallbacks)
{
    const Value v = parse("{\"x\": 1}");
    EXPECT_TRUE(v.has("x"));
    EXPECT_FALSE(v.has("y"));
    EXPECT_DOUBLE_EQ(v.number("y", -2.0), -2.0);
    EXPECT_EQ(v.string("y", "none"), "none");
    EXPECT_THROW(v.at("y"), FatalError);
}

TEST(Json, KindMismatchIsFatal)
{
    const Value v = parse("{\"x\": 1}");
    EXPECT_THROW(v.asNumber(), FatalError);
    EXPECT_THROW(v.at("x").asString(), FatalError);
}

TEST(Json, MalformedInputIsFatal)
{
    EXPECT_THROW(parse("{\"x\": }"), FatalError);
    EXPECT_THROW(parse("[1, 2"), FatalError);
    EXPECT_THROW(parse("tru"), FatalError);
    EXPECT_THROW(parse(""), FatalError);
    // The string overload rejects trailing garbage...
    EXPECT_THROW(parse("{} {}"), FatalError);
}

TEST(Json, StreamOverloadSupportsNdjson)
{
    // ...while the stream overload leaves it for the next call.
    std::istringstream is("{\"a\": 1}\n{\"a\": 2}\n");
    const Value first = parse(is);
    const Value second = parse(is);
    EXPECT_DOUBLE_EQ(first.number("a"), 1.0);
    EXPECT_DOUBLE_EQ(second.number("a"), 2.0);
}

// ---------------------------------------------------------------------
// Property / fuzz coverage: hostile input must always end in a clean
// FatalError, never a crash, hang, or silently wrong value.
// ---------------------------------------------------------------------

TEST(JsonFuzz, NanAndInfinityLiteralsAreRejected)
{
    // JSON has no non-finite numbers; none of the spellings common in
    // other serializers may sneak through the stream extraction.
    for (const char *text :
         {"NaN", "nan", "-NaN", "Infinity", "-Infinity", "inf",
          "-inf", "1e", "0x10", "+5"}) {
        EXPECT_THROW(parse(text), FatalError) << "input: " << text;
    }
}

TEST(JsonFuzz, MalformedDocumentsAreFatal)
{
    for (const char *text :
         {"{", "}", "[", "]", "{\"a\"}", "{\"a\":}", "{\"a\":1,}",
          "{\"a\" 1}", "{a: 1}", "[1,]", "[,1]", "[1 2]", "nul",
          "truth", "falsy", "\"open", "\"bad \\q escape\"",
          "\"bad \\u12g4 escape\"", "{\"a\": 1} extra", ",", ":",
          "--1", "1..2", "."}) {
        EXPECT_THROW(parse(text), FatalError) << "input: " << text;
    }
}

TEST(JsonFuzz, NestingAtTheCapParsesAndBeyondIsFatal)
{
    const auto nested = [](int levels) {
        std::string text;
        for (int i = 0; i < levels; ++i)
            text += '[';
        for (int i = 0; i < levels; ++i)
            text += ']';
        return text;
    };

    const Value at_cap = parse(nested(maxDepth));
    EXPECT_TRUE(at_cap.isArray());
    // One past the cap fails cleanly instead of overflowing the
    // parser's recursion.
    EXPECT_THROW(parse(nested(maxDepth + 1)), FatalError);
    EXPECT_THROW(parse(nested(maxDepth * 40)), FatalError);

    // Mixed object/array nesting counts against the same cap.
    std::string mixed;
    for (int i = 0; i < maxDepth; ++i)
        mixed += "{\"k\":[";
    EXPECT_THROW(parse(mixed), FatalError);
}

TEST(JsonFuzz, EveryTruncationOfAValidDocumentIsFatal)
{
    const std::string doc =
        "{\"name\": \"x\", \"vals\": [1.5, -2e-3, true, null], "
        "\"sub\": {\"deep\": [[\"s\"]]}}";
    ASSERT_NO_THROW(parse(doc));
    for (std::size_t len = 0; len < doc.size(); ++len) {
        EXPECT_THROW(parse(doc.substr(0, len)), FatalError)
            << "prefix length " << len;
    }
}

/** Random JSON document text, bounded to `depth` container levels. */
std::string
randomDocument(Rng &rng, int depth)
{
    switch (depth > 0 ? rng.uniformInt(6) : rng.uniformInt(4)) {
      case 0:
        return "null";
      case 1:
        return rng.uniformInt(2) ? "true" : "false";
      case 2: {
        char buffer[40];
        std::snprintf(buffer, sizeof(buffer), "%.17g",
                      rng.uniform(-1e6, 1e6));
        return buffer;
      }
      case 3: {
        std::string raw;
        const std::uint64_t len = rng.uniformInt(8);
        for (std::uint64_t i = 0; i < len; ++i)
            raw.push_back(
                static_cast<char>(rng.uniformInt(95) + 32));
        return "\"" + escape(raw) + "\"";
      }
      case 4: {
        std::string out = "[";
        const std::uint64_t n = rng.uniformInt(4);
        for (std::uint64_t i = 0; i < n; ++i) {
            if (i)
                out += ",";
            out += randomDocument(rng, depth - 1);
        }
        return out + "]";
      }
      default: {
        std::string out = "{";
        const std::uint64_t n = rng.uniformInt(4);
        for (std::uint64_t i = 0; i < n; ++i) {
            if (i)
                out += ",";
            out += "\"k" + std::to_string(i) + "\":";
            out += randomDocument(rng, depth - 1);
        }
        return out + "}";
    }
    }
}

TEST(JsonFuzz, RandomDocumentsRoundTripAndMutantsNeverCrash)
{
    Rng rng(20260806);
    int parsed = 0;
    int rejected = 0;
    for (int rep = 0; rep < 300; ++rep) {
        const std::string doc = randomDocument(rng, 4);
        // The generator only emits valid JSON.
        ASSERT_NO_THROW(parse(doc)) << doc;

        // Mutants must parse or fail cleanly — nothing else.
        std::string mutant = doc;
        const std::uint64_t edits = 1 + rng.uniformInt(3);
        for (std::uint64_t e = 0; e < edits && !mutant.empty(); ++e) {
            const auto pos = static_cast<std::size_t>(
                rng.uniformInt(mutant.size()));
            switch (rng.uniformInt(3)) {
              case 0: // flip a byte to a random printable char
                mutant[pos] =
                    static_cast<char>(rng.uniformInt(95) + 32);
                break;
              case 1: // delete a byte
                mutant.erase(pos, 1);
                break;
              default: // truncate
                mutant.resize(pos);
                break;
            }
        }
        try {
            (void)parse(mutant);
            ++parsed;
        } catch (const FatalError &) {
            ++rejected;
        }
    }
    // Sanity on the corpus itself: mutation produced both outcomes.
    EXPECT_GT(parsed, 0);
    EXPECT_GT(rejected, 0);
}

} // namespace
} // namespace otft::json
