/** @file Unit tests for util/json. */

#include <gtest/gtest.h>

#include <sstream>

#include "util/json.hpp"
#include "util/logging.hpp"

namespace otft::json {
namespace {

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(parse("null").isNull());
    EXPECT_TRUE(parse("true").asBool());
    EXPECT_FALSE(parse("false").asBool());
    EXPECT_DOUBLE_EQ(parse("42").asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(parse("-1.5e3").asNumber(), -1500.0);
    EXPECT_EQ(parse("\"hi\"").asString(), "hi");
}

TEST(Json, ParsesNestedDocument)
{
    const Value v = parse(
        "{\"name\": \"suite\", \"reps\": 3, "
        "\"wall\": {\"median\": 0.25}, "
        "\"samples\": [0.2, 0.25, 0.3], \"ok\": true}");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.string("name"), "suite");
    EXPECT_DOUBLE_EQ(v.number("reps"), 3.0);
    EXPECT_DOUBLE_EQ(v.at("wall").number("median"), 0.25);
    const auto &samples = v.at("samples").asArray();
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_DOUBLE_EQ(samples[1].asNumber(), 0.25);
    EXPECT_TRUE(v.at("ok").asBool());
}

TEST(Json, StringEscapesRoundTrip)
{
    const Value v =
        parse("\"tab\\t quote\\\" back\\\\ newline\\n u\\u0041\"");
    EXPECT_EQ(v.asString(), "tab\t quote\" back\\ newline\n uA");
}

TEST(Json, EscapeProducesParseableStrings)
{
    const std::string raw = "a\"b\\c\nd\te";
    const Value v = parse("\"" + escape(raw) + "\"");
    EXPECT_EQ(v.asString(), raw);
}

TEST(Json, MissingMembersUseFallbacks)
{
    const Value v = parse("{\"x\": 1}");
    EXPECT_TRUE(v.has("x"));
    EXPECT_FALSE(v.has("y"));
    EXPECT_DOUBLE_EQ(v.number("y", -2.0), -2.0);
    EXPECT_EQ(v.string("y", "none"), "none");
    EXPECT_THROW(v.at("y"), FatalError);
}

TEST(Json, KindMismatchIsFatal)
{
    const Value v = parse("{\"x\": 1}");
    EXPECT_THROW(v.asNumber(), FatalError);
    EXPECT_THROW(v.at("x").asString(), FatalError);
}

TEST(Json, MalformedInputIsFatal)
{
    EXPECT_THROW(parse("{\"x\": }"), FatalError);
    EXPECT_THROW(parse("[1, 2"), FatalError);
    EXPECT_THROW(parse("tru"), FatalError);
    EXPECT_THROW(parse(""), FatalError);
    // The string overload rejects trailing garbage...
    EXPECT_THROW(parse("{} {}"), FatalError);
}

TEST(Json, StreamOverloadSupportsNdjson)
{
    // ...while the stream overload leaves it for the next call.
    std::istringstream is("{\"a\": 1}\n{\"a\": 2}\n");
    const Value first = parse(is);
    const Value second = parse(is);
    EXPECT_DOUBLE_EQ(first.number("a"), 1.0);
    EXPECT_DOUBLE_EQ(second.number("a"), 2.0);
}

} // namespace
} // namespace otft::json
