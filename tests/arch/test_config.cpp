/** @file Unit tests for the core configuration. */

#include <gtest/gtest.h>

#include "arch/config.hpp"

namespace otft::arch {
namespace {

TEST(CoreConfig, BaselineIsNineStages)
{
    const auto config = baselineConfig();
    EXPECT_EQ(config.totalStages(), 9);
    EXPECT_EQ(config.fetchWidth, 1);
    EXPECT_EQ(config.backendWidth(), 3);
    EXPECT_EQ(config.aluPipes, 1);
}

TEST(CoreConfig, DepthAccessorsConsistent)
{
    auto config = baselineConfig();
    const int front = config.frontEndDepth();
    const int resolve = config.branchResolutionDepth();
    EXPECT_GT(resolve, front);
    EXPECT_LE(resolve, config.totalStages());

    config.stagesIn(Region::Fetch) += 2;
    EXPECT_EQ(config.frontEndDepth(), front + 2);
    EXPECT_EQ(config.branchResolutionDepth(), resolve + 2);
    EXPECT_EQ(config.totalStages(), 11);
}

TEST(CoreConfig, WakeupPenaltyFromIssueDepth)
{
    auto config = baselineConfig();
    EXPECT_EQ(config.wakeupPenalty(), 0);
    config.stagesIn(Region::Issue) = 3;
    EXPECT_EQ(config.wakeupPenalty(), 2);
}

TEST(CoreConfig, AluLatencyTracksExecuteDepth)
{
    auto config = baselineConfig();
    EXPECT_EQ(config.aluLatency(), 1);
    config.stagesIn(Region::Execute) = 3;
    EXPECT_EQ(config.aluLatency(), 3);
}

TEST(CoreConfig, DescribeMentionsWidthsAndDepth)
{
    auto config = baselineConfig();
    config.fetchWidth = 4;
    config.aluPipes = 3;
    const auto s = config.describe();
    EXPECT_NE(s.find("fe4"), std::string::npos);
    EXPECT_NE(s.find("be5"), std::string::npos);
    EXPECT_NE(s.find("9st"), std::string::npos);
}

TEST(CoreConfig, RegionNames)
{
    EXPECT_STREQ(toString(Region::Fetch), "fetch");
    EXPECT_STREQ(toString(Region::Issue), "issue");
    EXPECT_STREQ(toString(Region::Retire), "retire");
}

} // namespace
} // namespace otft::arch
