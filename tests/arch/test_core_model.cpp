/** @file Tests for the cycle-level out-of-order core model. */

#include <gtest/gtest.h>

#include "arch/core.hpp"
#include "util/logging.hpp"

namespace otft::arch {
namespace {

SimStats
simulate(const CoreConfig &config, const std::string &workload,
         std::uint64_t instructions = 40000)
{
    auto profile = workload::profileByName(workload);
    workload::TraceGenerator gen(profile, 7);
    CoreModel core(config, gen);
    return core.run(instructions, 8000);
}

TEST(CoreModel, IpcInPhysicalRange)
{
    const auto stats = simulate(baselineConfig(), "gzip");
    EXPECT_GT(stats.ipc(), 0.05);
    // Single-issue front end can never exceed IPC 1.
    EXPECT_LE(stats.ipc(), 1.0);
    EXPECT_EQ(stats.instructions, 40000u);
}

TEST(CoreModel, WiderFrontEndRaisesIpc)
{
    auto narrow = baselineConfig();
    auto wide = baselineConfig();
    wide.fetchWidth = 4;
    wide.aluPipes = 3;
    const auto s_narrow = simulate(narrow, "dhrystone");
    const auto s_wide = simulate(wide, "dhrystone");
    EXPECT_GT(s_wide.ipc(), 1.15 * s_narrow.ipc());
}

TEST(CoreModel, DeeperFrontEndLowersIpc)
{
    auto shallow = baselineConfig();
    shallow.fetchWidth = 2;
    shallow.aluPipes = 2;
    auto deep = shallow;
    deep.stagesIn(Region::Fetch) += 3;
    deep.stagesIn(Region::Decode) += 2;
    const auto s_shallow = simulate(shallow, "gzip");
    const auto s_deep = simulate(deep, "gzip");
    EXPECT_LT(s_deep.ipc(), s_shallow.ipc());
}

TEST(CoreModel, WakeupPenaltyLowersIpc)
{
    auto fast = baselineConfig();
    fast.fetchWidth = 2;
    fast.aluPipes = 2;
    auto slow = fast;
    slow.stagesIn(Region::Issue) = 3;
    EXPECT_LT(simulate(slow, "gzip").ipc(),
              simulate(fast, "gzip").ipc());
}

TEST(CoreModel, McfIsMemoryBound)
{
    const auto mcf = simulate(baselineConfig(), "mcf");
    const auto dhry = simulate(baselineConfig(), "dhrystone");
    EXPECT_LT(mcf.ipc(), 0.4 * dhry.ipc());
    EXPECT_GT(mcf.l2Misses, dhry.l2Misses * 4);
}

TEST(CoreModel, BranchStatsPopulated)
{
    const auto stats = simulate(baselineConfig(), "parser");
    EXPECT_GT(stats.branches, 0u);
    EXPECT_GT(stats.mispredicts, 0u);
    EXPECT_LT(stats.mispredictRate(), 0.5);
    EXPECT_GT(stats.loads, 0u);
    EXPECT_GT(stats.stores, 0u);
}

TEST(CoreModel, DeterministicForSameSeedAndConfig)
{
    const auto a = simulate(baselineConfig(), "bzip", 20000);
    const auto b = simulate(baselineConfig(), "bzip", 20000);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
}

TEST(CoreModel, RejectsInvalidWidths)
{
    auto config = baselineConfig();
    config.fetchWidth = 0;
    auto profile = workload::profileByName("gzip");
    workload::TraceGenerator gen(profile, 7);
    EXPECT_THROW(CoreModel(config, gen), FatalError);
}

TEST(CoreModel, ZeroWarmupWorks)
{
    auto profile = workload::profileByName("gzip");
    workload::TraceGenerator gen(profile, 7);
    CoreModel core(baselineConfig(), gen);
    const auto stats = core.run(5000, 0);
    EXPECT_EQ(stats.instructions, 5000u);
    EXPECT_GT(stats.cycles, 5000u);
}

/** Sweep: every paper workload runs on a mid-size config. */
class AllWorkloadsRun : public ::testing::TestWithParam<const char *>
{
};

TEST_P(AllWorkloadsRun, ProducesPlausibleIpc)
{
    auto config = baselineConfig();
    config.fetchWidth = 2;
    config.aluPipes = 2;
    const auto stats = simulate(config, GetParam(), 30000);
    EXPECT_GT(stats.ipc(), 0.03) << GetParam();
    EXPECT_LT(stats.ipc(), 2.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Paper, AllWorkloadsRun,
                         ::testing::Values("bzip", "gap", "gzip",
                                           "mcf", "parser", "vortex",
                                           "dhrystone"));

/** Sweep: IPC monotonically non-increasing as mispredict penalty
 *  regions deepen. */
class DepthIpc : public ::testing::TestWithParam<int>
{
};

TEST_P(DepthIpc, FrontDepthHurts)
{
    auto config = baselineConfig();
    config.fetchWidth = 2;
    config.aluPipes = 2;
    config.stagesIn(Region::Fetch) = GetParam();
    const auto stats = simulate(config, "gzip");
    // Compare against one stage deeper.
    auto deeper = config;
    deeper.stagesIn(Region::Fetch) = GetParam() + 2;
    const auto deep_stats = simulate(deeper, "gzip");
    EXPECT_LE(deep_stats.ipc(), stats.ipc() * 1.01);
}

INSTANTIATE_TEST_SUITE_P(Depths, DepthIpc,
                         ::testing::Values(2, 3, 4, 5));

} // namespace
} // namespace otft::arch
