/** @file Unit tests for the branch direction predictor. */

#include <gtest/gtest.h>

#include "arch/predictor.hpp"
#include "util/logging.hpp"
#include "workload/trace.hpp"

namespace otft::arch {
namespace {

TEST(Predictor, LearnsAConstantBranch)
{
    GsharePredictor p(12);
    int misses = 0;
    for (int i = 0; i < 1000; ++i) {
        if (p.predict(0x4000) != true)
            ++misses;
        p.update(0x4000, true);
    }
    EXPECT_LT(misses, 5);
}

TEST(Predictor, LearnsOppositeBiasesWithoutAliasing)
{
    // Two adjacent pcs with opposite biases: gselect indexing must
    // keep them apart.
    GsharePredictor p(12);
    int misses = 0;
    for (int i = 0; i < 4000; ++i) {
        const bool first = i % 2 == 0;
        const std::uint64_t pc = first ? 0x1000 : 0x1004;
        const bool taken = first;
        if (p.predict(pc) != taken && i > 64)
            ++misses;
        p.update(pc, taken);
    }
    EXPECT_LT(misses, 40);
}

TEST(Predictor, LearnsShortPattern)
{
    // T T N repeating: 3-bit history disambiguates the phase.
    GsharePredictor p(12, 3);
    const bool pattern[] = {true, true, false};
    int misses = 0;
    for (int i = 0; i < 3000; ++i) {
        const bool taken = pattern[i % 3];
        if (p.predict(0x2000) != taken && i > 100)
            ++misses;
        p.update(0x2000, taken);
    }
    EXPECT_LT(misses, 150);
}

TEST(Predictor, AchievesLowMispredictOnDhrystone)
{
    auto profile = workload::profileByName("dhrystone");
    workload::TraceGenerator gen(profile, 7);
    GsharePredictor p(12);
    int misses = 0, branches = 0;
    for (int i = 0; i < 200000; ++i) {
        const auto inst = gen.next();
        if (inst.op != workload::OpClass::Branch)
            continue;
        ++branches;
        if (p.predict(inst.pc) != inst.taken)
            ++misses;
        p.update(inst.pc, inst.taken);
    }
    EXPECT_LT(static_cast<double>(misses) / branches, 0.15);
}

TEST(Predictor, OutcomeBookkeeping)
{
    GsharePredictor p(10);
    p.recordOutcome(false);
    p.recordOutcome(true);
    p.recordOutcome(true);
    EXPECT_EQ(p.lookups(), 3u);
    EXPECT_EQ(p.mispredicts(), 2u);
}

TEST(Predictor, ValidatesConfiguration)
{
    EXPECT_THROW(GsharePredictor(2), FatalError);
    EXPECT_THROW(GsharePredictor(12, 12), FatalError);
    EXPECT_THROW(GsharePredictor(12, -1), FatalError);
    EXPECT_NO_THROW(GsharePredictor(12, 0));
}

} // namespace
} // namespace otft::arch
