/** @file Unit tests for the cache model. */

#include <gtest/gtest.h>

#include "arch/memory.hpp"

namespace otft::arch {
namespace {

TEST(Cache, ColdMissThenHit)
{
    Cache cache(1024, 2, 64);
    EXPECT_FALSE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1010)); // same line
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 2u);
}

TEST(Cache, LruEviction)
{
    // 2-way, 1 set of interest: fill both ways, touch the first, add
    // a third line: the second way (least recent) must be evicted.
    Cache cache(2 * 64, 2, 64); // exactly one set
    cache.access(0 * 64);
    cache.access(1 * 64);
    cache.access(0 * 64);       // refresh line 0
    cache.access(2 * 64);       // evicts line 1
    EXPECT_TRUE(cache.access(0 * 64));
    EXPECT_FALSE(cache.access(1 * 64));
}

TEST(Cache, WorkingSetBelowCapacityAllHits)
{
    Cache cache(32 * 1024, 4, 64);
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t a = 0; a < 16 * 1024; a += 64)
            cache.access(a);
    // Second pass is all hits.
    EXPECT_EQ(cache.misses(), 16u * 1024 / 64);
}

TEST(Cache, ThrashingAboveCapacity)
{
    Cache cache(4 * 1024, 4, 64);
    std::uint64_t misses_before = 0;
    for (int pass = 0; pass < 3; ++pass) {
        misses_before = cache.misses();
        for (std::uint64_t a = 0; a < 64 * 1024; a += 64)
            cache.access(a);
    }
    // Sequential sweep of 16x capacity: every access misses.
    EXPECT_EQ(cache.misses() - misses_before, 64u * 1024 / 64);
}

TEST(MemoryModel, LatencyTiers)
{
    MemoryModel mem(2, 12, 120);
    const std::uint64_t addr = 0x4000;
    EXPECT_EQ(mem.loadLatency(addr), 120); // cold
    EXPECT_EQ(mem.loadLatency(addr), 2);   // L1 hit
}

TEST(MemoryModel, NextLinePrefetchHelpsStreams)
{
    MemoryModel mem(2, 12, 120);
    int slow = 0;
    for (std::uint64_t a = 0; a < 64 * 1024; a += 8)
        if (mem.loadLatency(0x100000 + a) > 12)
            ++slow;
    // The next-line prefetcher halves the slow accesses of a
    // sequential stream (every other line is prefetched; 1024 lines
    // would all be slow without it).
    EXPECT_LE(slow, static_cast<int>(64 * 1024 / 64 / 2));
    EXPECT_GT(slow, 0);
}

TEST(MemoryModel, StoresFillCaches)
{
    MemoryModel mem(2, 12, 120);
    mem.store(0x9000);
    EXPECT_EQ(mem.loadLatency(0x9000), 2);
}

} // namespace
} // namespace otft::arch
