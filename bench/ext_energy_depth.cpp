/**
 * @file
 * Extension (paper Sec. 7 future work: "energy optimization"):
 * energy per operation versus pipeline depth for the complex ALU in
 * both technologies.
 *
 * Deeper pipelines raise throughput but add register ranks (clock and
 * static power). The energy-optimal depth is shallower than the
 * frequency-optimal depth — and the gap differs between technologies
 * because organic pseudo-E cells burn ratioed static current that
 * dwarfs switching energy, while silicon is dynamic-dominated.
 */

#include <cstdio>
#include <iostream>

#include "core/blocks.hpp"
#include "liberty/characterizer.hpp"
#include "liberty/silicon.hpp"
#include "netlist/bufferize.hpp"
#include "sta/pipeline.hpp"
#include "sta/power.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace otft;

namespace {

std::size_t
runSweep(const liberty::CellLibrary &library)
{
    const auto alu = netlist::bufferize(core::buildComplexAlu(), 6);
    sta::Pipeliner pipeliner(library);
    sta::StaEngine timing(library);
    sta::PowerEngine power(library);

    std::printf("\n== %s ==\n", library.name().c_str());
    Table table({"stages", "freq", "static", "dynamic", "clock",
                 "total power", "energy/op (norm)"});

    double best_energy = 0.0;
    int best_stage = 0;
    double e1 = 0.0;
    for (int stages : {1, 2, 4, 8, 12, 16, 22, 30}) {
        const auto report = pipeliner.pipeline(alu, stages);
        const auto sta = timing.analyze(report.netlist);
        const auto pw = power.estimate(report.netlist,
                                       sta.maxFrequency);
        // One operation completes per cycle at full occupancy.
        const double energy_per_op = pw.total() / sta.maxFrequency;
        if (stages == 1)
            e1 = energy_per_op;
        table.row()
            .add(static_cast<long long>(stages))
            .add(formatSi(sta.maxFrequency, "Hz"))
            .add(formatSi(pw.staticPower, "W"))
            .add(formatSi(pw.dynamicPower, "W"))
            .add(formatSi(pw.clockPower, "W"))
            .add(formatSi(pw.total(), "W"))
            .add(energy_per_op / e1, 4);
        if (best_stage == 0 || energy_per_op < best_energy) {
            best_energy = energy_per_op;
            best_stage = stages;
        }
    }
    table.render(std::cout);
    std::printf("energy-optimal depth: %d stages\n", best_stage);
    return table.numRows();
}

} // namespace

int
main(int argc, char **argv)
{
    cli::Session session("ext_energy_depth", argc, argv,
                         cli::Footer::On);
    std::printf("Extension — energy per operation vs ALU pipeline "
                "depth\n");
    const auto organic = liberty::cachedOrganicLibrary();
    const auto silicon = liberty::makeSiliconLibrary();
    std::size_t points = runSweep(silicon);
    points += runSweep(organic);
    session.setPoints(static_cast<std::int64_t>(points));
    std::printf("\nReading: organic energy/op keeps improving with "
                "depth as long as frequency gains outrun the added "
                "register static burn — throughput amortizes the "
                "ratioed current. Silicon bottoms out once clock "
                "power of the added ranks overtakes the frequency "
                "gain.\n");
    return 0;
}
