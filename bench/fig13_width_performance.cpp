/**
 * @file
 * Paper Fig. 13: normalized core performance matrices over front-end
 * width (1-6) and back-end width (3-7 execution pipes) for both
 * processes.
 *
 * Paper results this bench regenerates:
 *  - silicon optimum at M[4][2] with sharper fall-off around it;
 *  - organic optimum wider (paper M[7][2]) with a much flatter
 *    profile along the back-end axis — "organic technology is less
 *    sensitive to front-end and back-end width change".
 */

#include <cstdio>
#include <iostream>

#include "core/explorer.hpp"
#include "liberty/characterizer.hpp"
#include "liberty/silicon.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace otft;

namespace {

std::size_t
runSweep(const liberty::CellLibrary &library)
{
    core::ExplorerConfig config;
    config.instructions = 100000;
    core::ArchExplorer explorer(library, config);
    const core::WidthSweep sweep = explorer.widthSweep();

    double max_perf = 0.0;
    for (const auto &row : sweep.points)
        for (const auto &pt : row)
            max_perf = std::max(max_perf, pt.performance);

    std::printf("\n== %s — normalized performance ==\n",
                library.name().c_str());
    std::vector<std::string> headers = {"back-end \\ fe"};
    for (int fe = sweep.feMin; fe <= sweep.feMax; ++fe)
        headers.push_back(std::to_string(fe));
    Table table(std::move(headers));

    int best_be = 0, best_fe = 0;
    for (int be = sweep.beMin; be <= sweep.beMax; ++be) {
        auto &row = table.row();
        row.add(static_cast<long long>(be));
        for (int fe = sweep.feMin; fe <= sweep.feMax; ++fe) {
            const auto &pt =
                sweep.points[static_cast<std::size_t>(be - sweep.beMin)]
                            [static_cast<std::size_t>(fe - sweep.feMin)];
            const double norm = pt.performance / max_perf;
            row.add(norm, 3);
            if (norm >= 0.9999) {
                best_be = be;
                best_fe = fe;
            }
        }
    }
    table.render(std::cout);
    std::printf("optimum: M[%d][%d] (back-end %d, front-end %d)\n",
                best_be, best_fe, best_be, best_fe);

    // Back-end sensitivity at the optimum front-end column.
    const std::size_t fe_col =
        static_cast<std::size_t>(best_fe - sweep.feMin);
    const double at_be3 = sweep.points[0][fe_col].performance;
    const double at_be7 = sweep.points.back()[fe_col].performance;
    std::printf("back-end 3 -> 7 performance change at fe=%d: "
                "%+.1f%%\n", best_fe,
                100.0 * (at_be7 / at_be3 - 1.0));

    std::size_t n = 0;
    for (const auto &row : sweep.points)
        n += row.size();
    return n;
}

} // namespace

int
main(int argc, char **argv)
{
    cli::Session session("fig13_width_performance", argc, argv,
                         cli::Footer::On);
    const auto organic = liberty::cachedOrganicLibrary();
    const auto silicon = liberty::makeSiliconLibrary();

    std::printf("Fig. 13 — core performance vs superscalar widths\n");
    std::size_t points = runSweep(silicon);
    points += runSweep(organic);
    session.setPoints(static_cast<std::int64_t>(points));

    std::printf("\nPaper: silicon optimum M[4][2] with pronounced "
                "differences between neighbors; organic optimum three "
                "pipes wider with a flat profile.\n");
    return 0;
}
