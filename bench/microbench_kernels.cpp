/**
 * @file
 * google-benchmark kernels over the framework's hot loops: DC solve,
 * transient step, NLDM lookup, netlist generation, pipelining, STA,
 * trace generation, and the cycle-level core model.
 */

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "arch/core.hpp"
#include "cells/topologies.hpp"
#include "circuit/dc.hpp"
#include "circuit/transient.hpp"
#include "core/blocks.hpp"
#include "liberty/silicon.hpp"
#include "netlist/bufferize.hpp"
#include "netlist/generators.hpp"
#include "sta/pipeline.hpp"
#include "util/logging.hpp"
#include "util/stats_registry.hpp"

using namespace otft;

namespace {

void
BM_DcOperatingPoint(benchmark::State &state)
{
    setQuiet(true);
    cells::CellFactory factory;
    auto cell = factory.inverter(cells::InverterKind::PseudoE);
    for (auto _ : state) {
        circuit::DcAnalysis dc(cell.ckt);
        benchmark::DoNotOptimize(dc.operatingPoint());
    }
}
BENCHMARK(BM_DcOperatingPoint);

void
BM_VtcSweep(benchmark::State &state)
{
    setQuiet(true);
    cells::CellFactory factory;
    auto cell = factory.inverter(cells::InverterKind::PseudoE);
    circuit::DcAnalysis dc(cell.ckt);
    std::vector<double> values;
    for (int i = 0; i < 61; ++i)
        values.push_back(5.0 * i / 60.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            dc.sweepSource(cell.inputSources[0], values));
}
BENCHMARK(BM_VtcSweep);

void
BM_TransientInverter(benchmark::State &state)
{
    setQuiet(true);
    cells::CellFactory factory;
    auto cell = factory.inverter(cells::InverterKind::PseudoE,
                                 factory.inputCap());
    cell.ckt.setSourceWave(cell.inputSources[0],
                           circuit::Pwl::pulse(0.0, 5.0, 50e-6, 10e-6,
                                               300e-6));
    circuit::TransientConfig config;
    config.dt = 1e-6;
    config.tStop = 800e-6;
    for (auto _ : state) {
        circuit::TransientAnalysis tran(cell.ckt);
        benchmark::DoNotOptimize(tran.run(config));
    }
}
BENCHMARK(BM_TransientInverter);

void
BM_BuildMultiplier32(benchmark::State &state)
{
    for (auto _ : state) {
        netlist::Netlist nl;
        netlist::NetBuilder b(nl);
        auto a = b.inputBus("a", 32);
        auto y = b.inputBus("y", 32);
        benchmark::DoNotOptimize(netlist::arrayMultiplier(b, a, y));
    }
}
BENCHMARK(BM_BuildMultiplier32);

void
BM_StaComplexAlu(benchmark::State &state)
{
    const auto library = liberty::makeSiliconLibrary();
    const auto alu = netlist::bufferize(core::buildComplexAlu(), 6);
    sta::StaEngine engine(library);
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.analyze(alu));
}
BENCHMARK(BM_StaComplexAlu);

void
BM_PipelineComplexAlu(benchmark::State &state)
{
    const auto library = liberty::makeSiliconLibrary();
    const auto alu = netlist::bufferize(core::buildComplexAlu(), 6);
    sta::Pipeliner pipeliner(library);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            pipeliner.pipeline(alu, static_cast<int>(state.range(0))));
}
BENCHMARK(BM_PipelineComplexAlu)->Arg(4)->Arg(16);

void
BM_TraceGeneration(benchmark::State &state)
{
    auto profile = workload::profileByName("gzip");
    workload::TraceGenerator gen(profile, 7);
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.next());
}
BENCHMARK(BM_TraceGeneration);

void
BM_CoreModel10k(benchmark::State &state)
{
    auto profile = workload::profileByName("gzip");
    for (auto _ : state) {
        workload::TraceGenerator gen(profile, 7);
        arch::CoreConfig config;
        config.fetchWidth = 2;
        config.aluPipes = 2;
        arch::CoreModel core(config, gen);
        benchmark::DoNotOptimize(core.run(10000, 1000));
    }
}
BENCHMARK(BM_CoreModel10k);

} // namespace

int
main(int argc, char **argv)
{
    // Timings here gauge the framework's raw kernel cost, so stats
    // and tracing stay off unless explicitly requested.
    if (std::getenv("OTFT_STATS") == nullptr)
        stats::Registry::instance().setEnabled(false);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
