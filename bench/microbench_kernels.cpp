/**
 * @file
 * google-benchmark kernels over the framework's hot loops: DC solve,
 * transient step, NLDM lookup, netlist generation, pipelining, STA,
 * trace generation, and the cycle-level core model.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "arch/core.hpp"
#include "cells/topologies.hpp"
#include "circuit/batch_solver.hpp"
#include "circuit/dc.hpp"
#include "circuit/linear_solver.hpp"
#include "circuit/transient.hpp"
#include "core/blocks.hpp"
#include "liberty/silicon.hpp"
#include "netlist/bufferize.hpp"
#include "netlist/generators.hpp"
#include "sta/pipeline.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats_registry.hpp"

using namespace otft;

namespace {

void
BM_DcOperatingPoint(benchmark::State &state)
{
    setQuiet(true);
    cells::CellFactory factory;
    auto cell = factory.inverter(cells::InverterKind::PseudoE);
    for (auto _ : state) {
        circuit::DcAnalysis dc(cell.ckt);
        benchmark::DoNotOptimize(dc.operatingPoint());
    }
}
BENCHMARK(BM_DcOperatingPoint);

constexpr std::size_t kLuLanes = 8;

/** Deterministic diagonally-dominant lane systems for the LU pair. */
void
fillLaneSystems(std::size_t n, circuit::BatchedMatrix &batched,
                std::vector<circuit::Matrix> &scalar,
                std::vector<double> &rhs)
{
    Rng rng(42);
    scalar.assign(kLuLanes, circuit::Matrix(n));
    rhs.assign(n * kLuLanes, 0.0);
    for (std::size_t lane = 0; lane < kLuLanes; ++lane) {
        for (std::size_t r = 0; r < n; ++r) {
            for (std::size_t c = 0; c < n; ++c) {
                const double v =
                    rng.uniform(-1.0, 1.0) +
                    (r == c ? static_cast<double>(n) : 0.0);
                batched.at(r, c, lane) = v;
                scalar[lane].at(r, c) = v;
            }
            rhs[r * kLuLanes + lane] = rng.uniform(-5.0, 5.0);
        }
    }
}

void
BM_ScalarLuFactorSolve(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    circuit::BatchedMatrix batched(n, kLuLanes);
    std::vector<circuit::Matrix> systems;
    std::vector<double> rhs;
    fillLaneSystems(n, batched, systems, rhs);
    std::vector<double> b(n);
    for (auto _ : state) {
        for (std::size_t lane = 0; lane < kLuLanes; ++lane) {
            circuit::LuFactors lu;
            benchmark::DoNotOptimize(lu.factor(systems[lane]));
            for (std::size_t i = 0; i < n; ++i)
                b[i] = rhs[i * kLuLanes + lane];
            lu.solve(b);
            benchmark::DoNotOptimize(b.data());
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(kLuLanes));
}
BENCHMARK(BM_ScalarLuFactorSolve)->Arg(8)->Arg(16)->Arg(32);

void
BM_BatchedLuFactorSolve(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    circuit::BatchedMatrix batched(n, kLuLanes);
    std::vector<circuit::Matrix> systems;
    std::vector<double> rhs;
    fillLaneSystems(n, batched, systems, rhs);
    std::vector<std::size_t> all_lanes;
    for (std::size_t lane = 0; lane < kLuLanes; ++lane)
        all_lanes.push_back(lane);
    circuit::BatchedLu lu(n, kLuLanes);
    std::vector<std::uint8_t> ok(kLuLanes, 0);
    std::vector<double> b(rhs.size());
    for (auto _ : state) {
        lu.factor(batched, all_lanes, ok);
        b = rhs;
        lu.solve(b.data(), all_lanes);
        benchmark::DoNotOptimize(b.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(kLuLanes));
}
BENCHMARK(BM_BatchedLuFactorSolve)->Arg(8)->Arg(16)->Arg(32);

void
BM_BatchNewtonDc(benchmark::State &state)
{
    setQuiet(true);
    cells::CellFactory factory;
    const double vdd = factory.supply().vdd;
    std::vector<cells::BuiltCell> cells;
    for (std::size_t lane = 0; lane < kLuLanes; ++lane) {
        cells.push_back(factory.inverter(
            cells::InverterKind::PseudoE,
            20e-12 * static_cast<double>(1 + lane)));
        cells.back().ckt.setSourceWave(
            cells.back().inputSources[0],
            circuit::Pwl::constant(vdd * static_cast<double>(lane) /
                                   7.0));
    }
    std::vector<const circuit::Circuit *> lanes;
    for (const auto &cell : cells)
        lanes.push_back(&cell.ckt);
    circuit::BatchedMna mna(lanes);
    std::vector<circuit::BatchNewtonLane> lane_state(kLuLanes);
    for (auto _ : state) {
        for (std::size_t lane = 0; lane < kLuLanes; ++lane) {
            mna.setLaneX(lane,
                         circuit::Solution(mna.numUnknowns(), 0.0));
            mna.setLaneStep(lane, 0.0, 1.0, 0.0);
            lane_state[lane] = circuit::BatchNewtonLane{};
            lane_state[lane].active = true;
        }
        mna.solveNewtonAll(lane_state);
        benchmark::DoNotOptimize(lane_state.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(kLuLanes));
}
BENCHMARK(BM_BatchNewtonDc);

void
BM_VtcSweep(benchmark::State &state)
{
    setQuiet(true);
    cells::CellFactory factory;
    auto cell = factory.inverter(cells::InverterKind::PseudoE);
    circuit::DcAnalysis dc(cell.ckt);
    std::vector<double> values;
    for (int i = 0; i < 61; ++i)
        values.push_back(5.0 * i / 60.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            dc.sweepSource(cell.inputSources[0], values));
}
BENCHMARK(BM_VtcSweep);

void
BM_TransientInverter(benchmark::State &state)
{
    setQuiet(true);
    cells::CellFactory factory;
    auto cell = factory.inverter(cells::InverterKind::PseudoE,
                                 factory.inputCap());
    cell.ckt.setSourceWave(cell.inputSources[0],
                           circuit::Pwl::pulse(0.0, 5.0, 50e-6, 10e-6,
                                               300e-6));
    circuit::TransientConfig config;
    config.dt = 1e-6;
    config.tStop = 800e-6;
    for (auto _ : state) {
        circuit::TransientAnalysis tran(cell.ckt);
        benchmark::DoNotOptimize(tran.run(config));
    }
}
BENCHMARK(BM_TransientInverter);

void
BM_BuildMultiplier32(benchmark::State &state)
{
    for (auto _ : state) {
        netlist::Netlist nl;
        netlist::NetBuilder b(nl);
        auto a = b.inputBus("a", 32);
        auto y = b.inputBus("y", 32);
        benchmark::DoNotOptimize(netlist::arrayMultiplier(b, a, y));
    }
}
BENCHMARK(BM_BuildMultiplier32);

void
BM_StaComplexAlu(benchmark::State &state)
{
    const auto library = liberty::makeSiliconLibrary();
    const auto alu = netlist::bufferize(core::buildComplexAlu(), 6);
    sta::StaEngine engine(library);
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.analyze(alu));
}
BENCHMARK(BM_StaComplexAlu);

void
BM_PipelineComplexAlu(benchmark::State &state)
{
    const auto library = liberty::makeSiliconLibrary();
    const auto alu = netlist::bufferize(core::buildComplexAlu(), 6);
    sta::Pipeliner pipeliner(library);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            pipeliner.pipeline(alu, static_cast<int>(state.range(0))));
}
BENCHMARK(BM_PipelineComplexAlu)->Arg(4)->Arg(16);

void
BM_TraceGeneration(benchmark::State &state)
{
    auto profile = workload::profileByName("gzip");
    workload::TraceGenerator gen(profile, 7);
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.next());
}
BENCHMARK(BM_TraceGeneration);

void
BM_CoreModel10k(benchmark::State &state)
{
    auto profile = workload::profileByName("gzip");
    for (auto _ : state) {
        workload::TraceGenerator gen(profile, 7);
        arch::CoreConfig config;
        config.fetchWidth = 2;
        config.aluPipes = 2;
        arch::CoreModel core(config, gen);
        benchmark::DoNotOptimize(core.run(10000, 1000));
    }
}
BENCHMARK(BM_CoreModel10k);

} // namespace

int
main(int argc, char **argv)
{
    // Timings here gauge the framework's raw kernel cost, so stats
    // and tracing stay off unless explicitly requested.
    if (std::getenv("OTFT_STATS") == nullptr)
        stats::Registry::instance().setEnabled(false);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
