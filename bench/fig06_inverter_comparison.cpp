/**
 * @file
 * Paper Fig. 6: diode-load vs biased-load vs pseudo-E inverter DC
 * comparison at VDD = 15 V.
 *
 * Paper values: VM 8.1 / 6.8 / 7.7 V, max gain 1.2 / 1.6 / 3.0,
 * NMH 0.3 / 0.9 / 3.0 V, NML 0.4 / 1.2 / 3.5 V, static power (VIN=0)
 * 109 / 126 / 215 uW, static power (VIN=10V) <0.01 / <0.01 / 0.83 uW,
 * with VSS = - / -5 / -15 V.
 */

#include <cstdio>
#include <iostream>

#include "cells/topologies.hpp"
#include "cells/vtc.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace otft;
using cells::InverterKind;

int
main(int argc, char **argv)
{
    cli::Session session("fig06_inverter_comparison", argc, argv,
                         cli::Footer::On);
    struct Row
    {
        InverterKind kind;
        double vss;
        const char *paper;
    };
    const Row rows[] = {
        {InverterKind::DiodeLoad, 0.0,
         "VM 8.1, gain 1.2, NMH 0.3, NML 0.4, P 109/<0.01 uW"},
        {InverterKind::BiasedLoad, -5.0,
         "VM 6.8, gain 1.6, NMH 0.9, NML 1.2, P 126/<0.01 uW"},
        {InverterKind::PseudoE, -15.0,
         "VM 7.7, gain 3.0, NMH 3.0, NML 3.5, P 215/0.83 uW"},
    };

    std::printf("Fig. 6 — inverter DC comparison at VDD = 15 V\n\n");

    Table table({"style", "VSS (V)", "VM (V)", "max gain",
                 "NMH (V)", "NML (V)", "VOH (V)",
                 "VOL (V)", "P(VIN=0) uW", "P(VIN=VDD) uW"});
    for (const Row &row : rows) {
        cells::SupplyConfig supply{15.0, row.vss};
        cells::CellFactory factory(device::Level61Params{},
                                   cells::CellSizing{}, supply);
        cells::BuiltCell cell = factory.inverter(row.kind);
        cells::VtcAnalyzer analyzer(151);
        const auto r = analyzer.analyze(cell);
        table.row()
            .add(cells::toString(row.kind))
            .add(row.vss, 3)
            .add(r.vm, 3)
            .add(r.maxGain, 3)
            .add(r.nmh, 3)
            .add(r.nml, 3)
            .add(r.voh, 3)
            .add(r.vol, 3)
            .add(r.staticPowerLow * 1e6, 3)
            .add(r.staticPowerHigh * 1e6, 3);
    }
    table.render(std::cout);
    session.setPoints(static_cast<std::int64_t>(table.numRows()));

    std::printf("\nPaper values:\n");
    for (const Row &row : rows)
        std::printf("  %-12s %s\n", cells::toString(row.kind),
                    row.paper);
    std::printf("\nPaper trend check: pseudo-E gain ~2.5x the "
                "diode-load gain, noise margin up ~10x, full output "
                "swing.\n");
    return 0;
}
