/**
 * @file
 * Forensics replay debugger for solver failure dumps, plus validation
 * modes for the other diagnostics artifacts (used by
 * `scripts/verify.sh --diag`).
 *
 * Usage:
 *   diag_replay DUMP.json
 *       Rebuild the dumped circuit and re-run the failing solve with
 *       full per-iteration logging. Prints the iteration table and a
 *       REPRODUCED/DIVERGED verdict: the replayed iterations must match
 *       the dump's recorded trace bit for bit.
 *   diag_replay --check-diag FILE.json
 *       Validate a --diag-json telemetry document (schema, contexts).
 *   diag_replay --check-metrics FILE.jsonl
 *       Validate a --metrics-jsonl stream (schema, monotonic seq/t_ms).
 *
 * Exit codes: 0 reproduced / valid, 1 diverged / invalid, 2 usage or
 * I/O error.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "circuit/dump.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/metrics_stream.hpp"

using namespace otft;

namespace {

void
usage()
{
    std::fprintf(stderr,
                 "usage: diag_replay DUMP.json\n"
                 "       diag_replay --check-diag FILE.json\n"
                 "       diag_replay --check-metrics FILE.jsonl\n");
}

/** Bitwise double equality that treats NaN as equal to NaN. */
bool
sameBits(double a, double b)
{
    if (std::isnan(a) && std::isnan(b))
        return true;
    return a == b && std::signbit(a) == std::signbit(b);
}

int
replay(const std::string &path)
{
    const auto dump = circuit::dump::readFailureDump(path);
    std::printf("dump:      %s\n", path.c_str());
    std::printf("reason:    %s\n", dump.reason.c_str());
    std::printf("context:   %s\n", dump.context.empty()
                                       ? "(unlabeled)"
                                       : dump.context.c_str());
    std::printf("solve:     %s at t = %g s (dt = %g s, scale = %g)\n",
                diag::toString(dump.kind), dump.time, dump.dt,
                dump.sourceScale);
    std::printf("circuit:   %zu nodes, %zu FETs, %zu R, %zu C, "
                "%zu V, %zu I\n",
                dump.circuit.numNodes(), dump.circuit.fets().size(),
                dump.circuit.resistors().size(),
                dump.circuit.capacitors().size(),
                dump.circuit.voltageSources().size(),
                dump.circuit.currentSources().size());
    for (const auto &[key, value] : dump.attributes)
        std::printf("attribute: %s = %.17g\n", key.c_str(), value);

    const auto result = circuit::dump::replayDump(dump);
    std::printf("\nreplay:    %s after %zu iteration(s)\n",
                result.converged ? "converged" : "failed",
                result.trace.size());

    // The dump's ring holds the last <= 64 iterations before the
    // failure; line it up against the tail of the full replay trace.
    const std::size_t n_dump = dump.trace.size();
    const std::size_t n_replay = result.trace.size();
    const std::size_t offset =
        n_replay >= n_dump ? n_replay - n_dump : 0;

    std::printf("\n%6s  %23s  %23s  %6s  %s\n", "iter", "residual",
                "max_update", "mode", "match");
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < n_replay; ++i) {
        const auto &r = result.trace[i];
        const char *match = "";
        if (i >= offset && n_dump > 0) {
            const auto &d = dump.trace[i - offset];
            const bool ok = d.iteration == r.iteration &&
                            sameBits(d.residualNorm, r.residualNorm) &&
                            sameBits(d.maxUpdate, r.maxUpdate) &&
                            d.chord == r.chord;
            match = ok ? "ok" : "MISMATCH";
            if (!ok)
                ++mismatches;
        }
        std::printf("%6d  %23.17g  %23.17g  %6s  %s\n", r.iteration,
                    r.residualNorm, r.maxUpdate,
                    r.chord ? "chord" : "full", match);
    }

    if (n_dump == 0) {
        // Dumps written outside the Newton kernel (e.g. the transient
        // LTE budget guard) carry no iteration ring; there is nothing
        // to cross-check, so report the replay outcome only.
        std::printf("\nno recorded trace in dump; replay ran %zu "
                    "iteration(s)\n",
                    n_replay);
        return 0;
    }
    if (n_replay < n_dump) {
        std::printf("\nDIVERGED: replay ran %zu iteration(s), dump "
                    "recorded %zu\n",
                    n_replay, n_dump);
        return 1;
    }
    if (mismatches > 0) {
        std::printf("\nDIVERGED: %zu of %zu overlapping iteration(s) "
                    "differ\n",
                    mismatches, n_dump);
        return 1;
    }
    std::printf("\nREPRODUCED: all %zu overlapping iteration(s) match "
                "bit for bit\n",
                n_dump);
    return 0;
}

int
checkDiag(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("diag_replay: cannot read ", path);
    std::stringstream buffer;
    buffer << is.rdbuf();
    const json::Value doc = json::parse(buffer.str());
    if (!doc.isObject() || doc.string("schema") != diag::diagSchema) {
        std::fprintf(stderr,
                     "diag_replay: %s is not an %s document\n",
                     path.c_str(), diag::diagSchema);
        return 1;
    }
    if (!doc.has("contexts") || !doc.at("contexts").isObject()) {
        std::fprintf(stderr, "diag_replay: %s lacks a contexts map\n",
                     path.c_str());
        return 1;
    }
    std::uint64_t solves = 0;
    for (const auto &[name, stats] : doc.at("contexts").asObject()) {
        if (!stats.isObject()) {
            std::fprintf(stderr,
                         "diag_replay: context '%s' is not an object\n",
                         name.c_str());
            return 1;
        }
        solves += static_cast<std::uint64_t>(stats.number("solves"));
    }
    const std::size_t dumps =
        doc.has("dumps") ? doc.at("dumps").asArray().size() : 0;
    std::printf("diag ok: %zu context(s), %llu solve(s), %zu dump(s)\n",
                doc.at("contexts").asObject().size(),
                static_cast<unsigned long long>(solves), dumps);
    return 0;
}

int
checkMetrics(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("diag_replay: cannot read ", path);
    std::string line;
    std::size_t n_samples = 0;
    double last_t = -1.0;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        const json::Value doc = json::parse(line);
        if (!doc.isObject() ||
            doc.string("schema") != metrics::metricsSchema) {
            std::fprintf(stderr,
                         "diag_replay: %s line %zu is not an %s "
                         "sample\n",
                         path.c_str(), n_samples + 1,
                         metrics::metricsSchema);
            return 1;
        }
        const double seq = doc.number("seq", -1.0);
        if (seq != static_cast<double>(n_samples)) {
            std::fprintf(stderr,
                         "diag_replay: %s line %zu has seq %g, "
                         "expected %zu\n",
                         path.c_str(), n_samples + 1, seq, n_samples);
            return 1;
        }
        const double t_ms = doc.number("t_ms", -1.0);
        if (t_ms < last_t) {
            std::fprintf(stderr,
                         "diag_replay: %s line %zu time went "
                         "backwards (%g < %g)\n",
                         path.c_str(), n_samples + 1, t_ms, last_t);
            return 1;
        }
        if (!doc.has("scalars") || !doc.at("scalars").isObject()) {
            std::fprintf(stderr,
                         "diag_replay: %s line %zu lacks a scalars "
                         "map\n",
                         path.c_str(), n_samples + 1);
            return 1;
        }
        last_t = t_ms;
        ++n_samples;
    }
    if (n_samples < 2) {
        // The sampler always writes a baseline sample at start and a
        // final sample at stop, so anything under two means the stream
        // was truncated.
        std::fprintf(stderr,
                     "diag_replay: %s holds %zu sample(s), expected "
                     ">= 2\n",
                     path.c_str(), n_samples);
        return 1;
    }
    std::printf("metrics ok: %zu sample(s) over %.1f ms\n", n_samples,
                last_t);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        if (argc == 3 && std::strcmp(argv[1], "--check-diag") == 0)
            return checkDiag(argv[2]);
        if (argc == 3 && std::strcmp(argv[1], "--check-metrics") == 0)
            return checkMetrics(argv[2]);
        if (argc == 2 && argv[1][0] != '-')
            return replay(argv[1]);
        usage();
        return 2;
    } catch (const FatalError &) {
        return 2;
    }
}
