#include "scenarios.hpp"

#include <cstdint>
#include <memory>
#include <optional>

#include "arch/config.hpp"
#include "arch/core.hpp"
#include "cells/topologies.hpp"
#include "cells/vtc.hpp"
#include "circuit/batch_solver.hpp"
#include "circuit/dc.hpp"
#include "circuit/transient.hpp"
#include "core/explorer.hpp"
#include "device/fitting.hpp"
#include "device/measurement.hpp"
#include "device/pentacene.hpp"
#include "liberty/characterizer.hpp"
#include "liberty/silicon.hpp"
#include "netlist/bufferize.hpp"
#include "netlist/generators.hpp"
#include "netlist/netlist.hpp"
#include "sta/pipeline.hpp"
#include "sta/sta.hpp"
#include "util/parallel.hpp"
#include "util/result_cache.hpp"
#include "workload/trace.hpp"

namespace otft::bench {

namespace {

/**
 * Shared lazy fixtures. Each scenario's setup hook materializes only
 * what it needs, so a filtered run never pays for the rest; fixture
 * construction happens outside the timed region by contract
 * (ScenarioSuite calls setup before the warmup reps).
 */
struct Fixtures
{
    std::optional<cells::CellFactory> factory;
    std::optional<liberty::CellLibrary> silicon;
    /** 16x16 array multiplier, fanout-buffered (the Fig. 12 ALU). */
    std::optional<netlist::Netlist> alu16;
    std::optional<cells::BuiltCell> vtcInverter;
    std::optional<cells::BuiltCell> loadedInverter;
    std::optional<std::vector<device::TransferCurve>> curves;
    /** 8 pseudo-E inverters with per-lane loads and input biases. */
    std::optional<std::vector<cells::BuiltCell>> batchLanes;

    cells::CellFactory &
    getFactory()
    {
        if (!factory)
            factory.emplace();
        return *factory;
    }

    liberty::CellLibrary &
    getSilicon()
    {
        if (!silicon)
            silicon.emplace(liberty::makeSiliconLibrary());
        return *silicon;
    }

    std::vector<cells::BuiltCell> &
    getBatchLanes()
    {
        if (!batchLanes) {
            auto &f = getFactory();
            const double vdd = f.supply().vdd;
            batchLanes.emplace();
            for (std::size_t lane = 0; lane < 8; ++lane) {
                batchLanes->push_back(f.inverter(
                    cells::InverterKind::PseudoE,
                    20e-12 * static_cast<double>(1 + lane)));
                batchLanes->back().ckt.setSourceWave(
                    batchLanes->back().inputSources[0],
                    circuit::Pwl::constant(
                        vdd * static_cast<double>(lane) / 7.0));
            }
        }
        return *batchLanes;
    }

    netlist::Netlist &
    getAlu16()
    {
        if (!alu16) {
            netlist::Netlist raw;
            netlist::NetBuilder b(raw);
            const auto x = b.inputBus("a", 16);
            const auto y = b.inputBus("y", 16);
            b.outputBus("p", netlist::arrayMultiplier(b, x, y));
            alu16.emplace(netlist::bufferize(raw, 6));
        }
        return *alu16;
    }
};

Fixtures &
fixtures()
{
    static Fixtures f;
    return f;
}

/** The reduced 2x2 NLDM grid (the floor) used by fast paths. */
liberty::CharacterizerConfig
miniGrid()
{
    liberty::CharacterizerConfig mini;
    mini.slewAxis = {4e-6, 64e-6};
    mini.loadMultipliers = {0.5, 6.0};
    return mini;
}

/**
 * The 8x8 grid used by the batched-engine scenario: 64 arc points
 * fill eight 8-wide lane groups, so at --jobs 8 both the scalar and
 * the batched engine keep every worker busy (the comparison stays
 * engine-vs-engine, not occupancy-vs-occupancy).
 */
liberty::CharacterizerConfig
wideGrid()
{
    liberty::CharacterizerConfig wide;
    wide.slewAxis = {2e-6, 4e-6, 8e-6, 16e-6,
                     32e-6, 64e-6, 128e-6, 256e-6};
    wide.loadMultipliers = {0.25, 0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0};
    return wide;
}

void
addDeviceFit(perf::ScenarioSuite &suite)
{
    suite.add({
        "device.model_fit",
        "device",
        "Nelder-Mead level-1 fit of the measured pentacene transfer "
        "curve at |VDS| = 1 V",
        [] {
            auto &f = fixtures();
            if (!f.curves)
                f.curves.emplace(device::measurePentaceneFig3());
        },
        []() -> std::uint64_t {
            const auto &curve = fixtures().curves->front();
            device::ModelFitter fitter(device::Polarity::PType,
                                       device::pentaceneGeometry());
            const auto fit = fitter.fitLevel1(curve);
            (void)fit;
            return curve.vgs.size();
        },
    });
}

void
addDcOperatingPoint(perf::ScenarioSuite &suite)
{
    suite.add({
        "circuit.dc_operating_point",
        "circuit",
        "cold Newton + homotopy operating points of the pseudo-E "
        "inverter, NAND2, and NOR2",
        [] { fixtures().getFactory(); },
        []() -> std::uint64_t {
            auto &factory = fixtures().getFactory();
            std::uint64_t solves = 0;
            cells::BuiltCell cellset[3] = {
                factory.inverter(cells::InverterKind::PseudoE),
                factory.nand(2),
                factory.nor(2),
            };
            for (auto &cell : cellset) {
                circuit::DcAnalysis dc(cell.ckt);
                for (int k = 0; k < 4; ++k) {
                    (void)dc.operatingPoint();
                    ++solves;
                }
            }
            return solves;
        },
    });
}

void
addTransientStep(perf::ScenarioSuite &suite)
{
    suite.add({
        "circuit.transient_step",
        "circuit",
        "backward-Euler transient of a loaded pseudo-E inverter "
        "through one input pulse",
        [] {
            auto &f = fixtures();
            if (!f.loadedInverter) {
                auto &factory = f.getFactory();
                f.loadedInverter.emplace(factory.inverter(
                    cells::InverterKind::PseudoE,
                    4.0 * factory.inputCap()));
                auto &cell = *f.loadedInverter;
                cell.ckt.setSourceWave(
                    cell.inputSources[0],
                    circuit::Pwl::pulse(0.0, cell.supply.vdd, 20e-6,
                                        4e-6, 60e-6));
            }
        },
        []() -> std::uint64_t {
            auto &cell = *fixtures().loadedInverter;
            circuit::TransientConfig config;
            config.tStop = 160e-6;
            config.dt = 0.5e-6;
            const auto result =
                circuit::TransientAnalysis(cell.ckt).run(config);
            return result.time().size();
        },
    });
}

/**
 * The adaptive/fixed stepping pair on the identical circuit and
 * stimulus; the ratio of the two medians is the headline win of LTE
 * step control on a settle-dominated waveform.
 */
void
addTransientModes(perf::ScenarioSuite &suite)
{
    const auto setup = [] {
        auto &f = fixtures();
        if (!f.loadedInverter) {
            auto &factory = f.getFactory();
            f.loadedInverter.emplace(factory.inverter(
                cells::InverterKind::PseudoE,
                4.0 * factory.inputCap()));
            auto &cell = *f.loadedInverter;
            cell.ckt.setSourceWave(
                cell.inputSources[0],
                circuit::Pwl::pulse(0.0, cell.supply.vdd, 20e-6, 4e-6,
                                    60e-6));
        }
    };
    const auto body = [](bool fixed) -> std::uint64_t {
        auto &cell = *fixtures().loadedInverter;
        circuit::TransientConfig config;
        config.tStop = 160e-6;
        config.dt = 0.5e-6;
        config.fixedStep = fixed;
        const auto result =
            circuit::TransientAnalysis(cell.ckt).run(config);
        return result.time().size();
    };
    suite.add({
        "circuit.transient_adaptive",
        "circuit",
        "LTE-controlled adaptive transient of the loaded pseudo-E "
        "inverter pulse (default engine)",
        setup,
        [body]() -> std::uint64_t { return body(false); },
    });
    suite.add({
        "circuit.transient_fixed",
        "circuit",
        "the same inverter pulse on the historical fixed 0.5 us grid",
        setup,
        [body]() -> std::uint64_t { return body(true); },
    });
}

void
addVtcSweep(perf::ScenarioSuite &suite)
{
    suite.add({
        "cells.vtc_sweep",
        "cells",
        "101-point warm-started VTC sweep with threshold, gain, and "
        "noise-margin extraction",
        [] {
            auto &f = fixtures();
            if (!f.vtcInverter)
                f.vtcInverter.emplace(f.getFactory().inverter(
                    cells::InverterKind::PseudoE));
        },
        []() -> std::uint64_t {
            const auto vtc = cells::VtcAnalyzer(101).analyze(
                *fixtures().vtcInverter);
            return vtc.vin.size();
        },
    });
}

void
addNldmCharacterize(perf::ScenarioSuite &suite)
{
    suite.add({
        "liberty.nldm_characterize",
        "liberty",
        "transistor-level NLDM characterization of the pseudo-E "
        "inverter on the minimal 2x2 slew/load grid",
        [] { fixtures().getFactory(); },
        []() -> std::uint64_t {
            // Pinned serial and scalar-engine so this trajectory
            // stays comparable with reports recorded before the
            // parallel layer and the batched engine landed; the _par
            // variant below measures the threaded path and _batched
            // the lane engine. The result cache is cleared every rep
            // so the scenario keeps measuring real transient work
            // (nldm_cached_resweep measures the memoized path).
            cache::ResultCache::instance().clear();
            parallel::JobsOverride pin(1);
            parallel::BatchLanesOverride scalar_engine(0);
            liberty::Characterizer chr(fixtures().getFactory(),
                                       miniGrid());
            const auto cell = chr.characterizeCombinational("inv");
            (void)cell;
            const auto &grid = miniGrid();
            return grid.slewAxis.size() * grid.loadMultipliers.size();
        },
    });
    suite.add({
        "liberty.nldm_characterize_par",
        "liberty",
        "the nldm_characterize workload fanned out across all "
        "hardware threads (one task per slew/load grid point)",
        [] { fixtures().getFactory(); },
        []() -> std::uint64_t {
            cache::ResultCache::instance().clear();
            parallel::JobsOverride pin(parallel::hardwareJobs());
            parallel::BatchLanesOverride scalar_engine(0);
            liberty::Characterizer chr(fixtures().getFactory(),
                                       miniGrid());
            const auto cell = chr.characterizeCombinational("inv");
            (void)cell;
            const auto &grid = miniGrid();
            return grid.slewAxis.size() * grid.loadMultipliers.size();
        },
    });
    suite.add({
        "liberty.nldm_cached_resweep",
        "liberty",
        "re-characterization of the inverter with every arc point "
        "served from the warm result cache",
        [] {
            // Warm the cache with one cold characterization; the
            // timed body then re-sweeps the identical grid.
            cache::ResultCache::instance().clear();
            parallel::JobsOverride pin(1);
            parallel::BatchLanesOverride scalar_engine(0);
            liberty::Characterizer chr(fixtures().getFactory(),
                                       miniGrid());
            (void)chr.characterizeCombinational("inv");
        },
        []() -> std::uint64_t {
            parallel::JobsOverride pin(1);
            parallel::BatchLanesOverride scalar_engine(0);
            liberty::Characterizer chr(fixtures().getFactory(),
                                       miniGrid());
            const auto cell = chr.characterizeCombinational("inv");
            (void)cell;
            const auto &grid = miniGrid();
            return grid.slewAxis.size() * grid.loadMultipliers.size();
        },
    });
    suite.add({
        "liberty.nldm_characterize_batched",
        "liberty",
        "inverter NLDM characterization on the 8x8 slew/load grid "
        "across all hardware threads; the lane width follows the "
        "session --batch-lanes setting (default 8, 0 = scalar), so "
        "scripts/verify.sh --bench can diff the two engines on "
        "byte-identical workloads",
        [] { fixtures().getFactory(); },
        []() -> std::uint64_t {
            cache::ResultCache::instance().clear();
            parallel::JobsOverride pin(parallel::hardwareJobs());
            liberty::Characterizer chr(fixtures().getFactory(),
                                       wideGrid());
            const auto cell = chr.characterizeCombinational("inv");
            (void)cell;
            const auto &grid = wideGrid();
            return grid.slewAxis.size() * grid.loadMultipliers.size();
        },
    });
}

void
addBatchNewton(perf::ScenarioSuite &suite)
{
    suite.add({
        "circuit.batch_newton",
        "circuit",
        "raw batched-Newton kernel: 8 inverter lanes (distinct loads "
        "and input biases) DC-solved in lockstep, 32 rounds of cold "
        "starts per rep",
        [] { fixtures().getBatchLanes(); },
        []() -> std::uint64_t {
            auto &cells = fixtures().getBatchLanes();
            std::vector<const circuit::Circuit *> lanes;
            for (const auto &cell : cells)
                lanes.push_back(&cell.ckt);
            circuit::BatchedMna mna(lanes);
            constexpr std::uint64_t repeats = 32;
            std::vector<circuit::BatchNewtonLane> state(lanes.size());
            for (std::uint64_t k = 0; k < repeats; ++k) {
                for (std::size_t lane = 0; lane < lanes.size();
                     ++lane) {
                    mna.setLaneX(
                        lane,
                        circuit::Solution(mna.numUnknowns(), 0.0));
                    mna.setLaneStep(lane, 0.0, 1.0, 0.0);
                    state[lane] = circuit::BatchNewtonLane{};
                    state[lane].active = true;
                }
                mna.solveNewtonAll(state);
            }
            return repeats * lanes.size();
        },
    });
}

void
addNetlistGenerate(perf::ScenarioSuite &suite)
{
    suite.add({
        "netlist.generate_bufferize",
        "netlist",
        "8x8 array multiplier generation plus max-fanout-6 buffer-tree "
        "insertion",
        [] {},
        []() -> std::uint64_t {
            netlist::Netlist raw;
            netlist::NetBuilder b(raw);
            const auto x = b.inputBus("a", 8);
            const auto y = b.inputBus("y", 8);
            b.outputBus("p", netlist::arrayMultiplier(b, x, y));
            return netlist::bufferize(raw, 6).numGates();
        },
    });
}

void
addStaPipeline(perf::ScenarioSuite &suite)
{
    suite.add({
        "sta.pipeline_cut_analyze",
        "sta",
        "8-stage pipeline cut of the buffered 16x16 multiplier plus "
        "full STA on the silicon library",
        [] {
            fixtures().getSilicon();
            fixtures().getAlu16();
        },
        []() -> std::uint64_t {
            auto &f = fixtures();
            const auto cut =
                sta::Pipeliner(f.getSilicon()).pipeline(f.getAlu16(), 8);
            const auto timing =
                sta::StaEngine(f.getSilicon()).analyze(cut.netlist);
            (void)timing;
            return cut.netlist.numGates();
        },
    });
}

void
addWorkloadTrace(perf::ScenarioSuite &suite)
{
    suite.add({
        "workload.trace_generation",
        "workload",
        "200k-instruction synthetic mcf trace (branch/dependency/"
        "locality models)",
        [] {},
        []() -> std::uint64_t {
            constexpr std::uint64_t count = 200000;
            workload::TraceGenerator gen(
                workload::profileByName("mcf"), 11);
            std::uint64_t taken = 0;
            for (std::uint64_t i = 0; i < count; ++i)
                taken += gen.next().taken ? 1 : 0;
            // Consume `taken` so the loop cannot be elided.
            return count + (taken & 1);
        },
    });
}

void
addCoreSimulation(perf::ScenarioSuite &suite)
{
    suite.add({
        "arch.core_simulation",
        "arch",
        "cycle-level baseline-core simulation of 30k dhrystone "
        "instructions after 3k warmup",
        [] {},
        []() -> std::uint64_t {
            workload::TraceGenerator gen(
                workload::profileByName("dhrystone"), 11);
            arch::CoreModel model(arch::baselineConfig(), gen);
            return model.run(30000, 3000).instructions;
        },
    });
}

void
addExplorerPoint(perf::ScenarioSuite &suite)
{
    suite.add({
        "core.explorer_point",
        "core",
        "end-to-end design-point evaluation (synthesis + STA + IPC) "
        "of the baseline core on the silicon library; the process-wide "
        "result cache stays warm across reps, as it does in a sweep",
        [] { fixtures().getSilicon(); },
        []() -> std::uint64_t {
            // Pinned serial for trajectory continuity (see
            // liberty.nldm_characterize).
            parallel::JobsOverride pin(1);
            core::ExplorerConfig config;
            config.instructions = 3000;
            core::ArchExplorer explorer(fixtures().getSilicon(),
                                        config);
            (void)explorer.evaluate(arch::baselineConfig());
            return config.instructions;
        },
    });
}

/**
 * The seven-workload IPC fan-out as a serial/parallel pair; the ratio
 * of the two medians is the headline speedup of the parallel layer on
 * this machine.
 */
void
addIpcFanout(perf::ScenarioSuite &suite)
{
    const auto body = [](int jobs_count) -> std::uint64_t {
        parallel::JobsOverride pin(jobs_count);
        core::ExplorerConfig config;
        config.instructions = 5000;
        core::ArchExplorer explorer(fixtures().getSilicon(), config);
        const auto ipc = explorer.measureIpc(arch::baselineConfig());
        return config.instructions * ipc.size();
    };
    suite.add({
        "core.ipc_fanout_serial",
        "core",
        "seven-workload IPC simulation of the baseline core, pinned "
        "to one worker",
        [] { fixtures().getSilicon(); },
        [body]() -> std::uint64_t { return body(1); },
    });
    suite.add({
        "core.ipc_fanout_parallel",
        "core",
        "seven-workload IPC simulation of the baseline core across "
        "all hardware threads",
        [] { fixtures().getSilicon(); },
        [body]() -> std::uint64_t {
            return body(parallel::hardwareJobs());
        },
    });
}

/**
 * A reduced width-sweep grid as a serial/parallel pair; exercises the
 * task-local-synthesizer path of ArchExplorer::widthSweep.
 */
void
addExplorerSweep(perf::ScenarioSuite &suite)
{
    const auto body = [](int jobs_count) -> std::uint64_t {
        // Cleared per rep: the scenario exists to compare serial vs
        // parallel evaluation, so every rep must do real work.
        cache::ResultCache::instance().clear();
        parallel::JobsOverride pin(jobs_count);
        core::ExplorerConfig config;
        config.instructions = 2000;
        core::ArchExplorer explorer(fixtures().getSilicon(), config);
        const auto sweep = explorer.widthSweep(1, 2, 3, 4);
        return sweep.points.size() * sweep.points.front().size();
    };
    suite.add({
        "core.explorer_sweep_serial",
        "core",
        "2x2 width-sweep grid (synthesis + STA + IPC per point), "
        "pinned to one worker",
        [] { fixtures().getSilicon(); },
        [body]() -> std::uint64_t { return body(1); },
    });
    suite.add({
        "core.explorer_sweep_parallel",
        "core",
        "2x2 width-sweep grid (synthesis + STA + IPC per point) "
        "across all hardware threads",
        [] { fixtures().getSilicon(); },
        [body]() -> std::uint64_t {
            return body(parallel::hardwareJobs());
        },
    });
}

} // namespace

void
registerAllScenarios(perf::ScenarioSuite &suite)
{
    addDeviceFit(suite);
    addDcOperatingPoint(suite);
    addTransientStep(suite);
    addTransientModes(suite);
    addVtcSweep(suite);
    addNldmCharacterize(suite);
    addBatchNewton(suite);
    addNetlistGenerate(suite);
    addStaPipeline(suite);
    addWorkloadTrace(suite);
    addCoreSimulation(suite);
    addExplorerPoint(suite);
    addIpcFanout(suite);
    addExplorerSweep(suite);
}

} // namespace otft::bench
