/**
 * @file
 * Compare two BENCH_*.json reports under the MAD-based noise gate and
 * exit nonzero when a regression clears it — the enforcement half of
 * the perf flight recorder (scripts/perf_gate.sh and the perf_smoke
 * ctest label wrap this binary).
 *
 * Usage:
 *   perf_diff BASELINE.json CURRENT.json
 *             [--threshold F] [--mad-k F] [--abs-floor SECONDS]
 *             [--counter-threshold F] [--markdown]
 *
 * --markdown renders the table as GitHub-flavored markdown (for PR
 * comments / CI job summaries) instead of the aligned text table.
 *
 * Exit codes: 0 no regressions, 1 regressions past the gate,
 * 2 usage or I/O error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "util/logging.hpp"
#include "util/perf_report.hpp"

using namespace otft;

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: perf_diff BASELINE.json CURRENT.json\n"
        "                 [--threshold F] [--mad-k F]\n"
        "                 [--abs-floor SECONDS] [--counter-threshold F]\n"
        "                 [--markdown]\n");
}

double
parseNumber(const char *text, const char *what)
{
    char *end = nullptr;
    const double v = std::strtod(text, &end);
    if (end == text || *end != '\0')
        fatal("perf_diff: ", what, " expects a number, got '", text,
              "'");
    return v;
}

perf::BenchReport
load(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("perf_diff: cannot read ", path);
    return perf::readReport(is);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baseline_path;
    std::string current_path;
    perf::DiffOptions options;
    bool markdown = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (std::strcmp(arg, "--threshold") == 0 && has_value) {
            options.wallThreshold =
                parseNumber(argv[++i], "--threshold");
        } else if (std::strcmp(arg, "--mad-k") == 0 && has_value) {
            options.madK = parseNumber(argv[++i], "--mad-k");
        } else if (std::strcmp(arg, "--abs-floor") == 0 && has_value) {
            options.minWallDeltaS =
                parseNumber(argv[++i], "--abs-floor");
        } else if (std::strcmp(arg, "--counter-threshold") == 0 &&
                   has_value) {
            options.counterThreshold =
                parseNumber(argv[++i], "--counter-threshold");
        } else if (std::strcmp(arg, "--markdown") == 0) {
            markdown = true;
        } else if (arg[0] == '-') {
            usage();
            return 2;
        } else if (baseline_path.empty()) {
            baseline_path = arg;
        } else if (current_path.empty()) {
            current_path = arg;
        } else {
            usage();
            return 2;
        }
    }
    if (baseline_path.empty() || current_path.empty()) {
        usage();
        return 2;
    }

    try {
        const auto baseline = load(baseline_path);
        const auto current = load(current_path);
        if (baseline.env.gitSha != current.env.gitSha)
            inform("comparing ", baseline.env.gitSha, " -> ",
                   current.env.gitSha);
        const auto diff =
            perf::diffReports(baseline, current, options);
        if (markdown)
            perf::renderDiffMarkdown(diff, std::cout);
        else
            perf::renderDiff(diff, std::cout);
        return diff.regressions > 0 ? 1 : 0;
    } catch (const FatalError &) {
        return 2;
    }
}
