/**
 * @file
 * Paper Fig. 14: normalized core area matrices over front-end width
 * (1-6) and back-end width (3-7) for both processes.
 *
 * Paper result this bench regenerates: the two technologies' area
 * maps are nearly identical once each is normalized to its own
 * maximum (range ~0.48 to 1.00), because the same netlist growth
 * drives both.
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/explorer.hpp"
#include "liberty/characterizer.hpp"
#include "liberty/silicon.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace otft;

namespace {

std::vector<std::vector<double>>
areaMatrix(const liberty::CellLibrary &library)
{
    core::ExplorerConfig config;
    // Area needs no IPC simulation; keep the runs tiny.
    config.instructions = 1000;
    core::ArchExplorer explorer(library, config);
    const core::WidthSweep sweep = explorer.widthSweep();

    double max_area = 0.0;
    for (const auto &row : sweep.points)
        for (const auto &pt : row)
            max_area = std::max(max_area, pt.timing.area);

    std::printf("\n== %s — normalized area ==\n",
                library.name().c_str());
    std::vector<std::string> headers = {"back-end \\ fe"};
    for (int fe = sweep.feMin; fe <= sweep.feMax; ++fe)
        headers.push_back(std::to_string(fe));
    Table table(std::move(headers));

    std::vector<std::vector<double>> matrix;
    for (const auto &row : sweep.points) {
        auto &trow = table.row();
        trow.add(static_cast<long long>(
            sweep.beMin + static_cast<int>(matrix.size())));
        std::vector<double> mrow;
        for (const auto &pt : row) {
            const double norm = pt.timing.area / max_area;
            mrow.push_back(norm);
            trow.add(norm, 3);
        }
        matrix.push_back(std::move(mrow));
    }
    table.render(std::cout);
    return matrix;
}

} // namespace

int
main(int argc, char **argv)
{
    cli::Session session("fig14_width_area", argc, argv,
                         cli::Footer::On);
    const auto organic = liberty::cachedOrganicLibrary();
    const auto silicon = liberty::makeSiliconLibrary();

    std::printf("Fig. 14 — core area vs superscalar widths\n");
    const auto si = areaMatrix(silicon);
    const auto org = areaMatrix(organic);
    std::size_t points = 0;
    for (const auto &row : si)
        points += row.size();
    session.setPoints(static_cast<std::int64_t>(points));

    // Paper check: "the areas for silicon-based cores are similar to
    // the organic core areas" — report the max normalized deviation.
    double worst = 0.0;
    for (std::size_t i = 0; i < si.size(); ++i)
        for (std::size_t j = 0; j < si[i].size(); ++j)
            worst = std::max(worst, std::abs(si[i][j] - org[i][j]));
    std::printf("\nmax |silicon - organic| normalized area deviation: "
                "%.3f (paper: maps nearly identical)\n", worst);
    return 0;
}
