/**
 * @file
 * Paper Fig. 4: level-1 vs level-61 SPICE model fits of the measured
 * pentacene transfer curve at |VDS| = 1 V.
 *
 * Fits both models to the synthetic measurement, prints sampled
 * measured/fitted currents, and the fit quality. The paper's result:
 * level 1 captures the on-region qualitatively but cannot represent
 * subthreshold conduction or leakage; level 61 fits the whole curve.
 */

#include <cstdio>
#include <iostream>

#include "device/fitting.hpp"
#include "device/measurement.hpp"
#include "device/pentacene.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace otft;

int
main(int argc, char **argv)
{
    cli::Session session("fig04_model_fit", argc, argv,
                         cli::Footer::On);
    const auto curves = device::measurePentaceneFig3();
    const auto &curve = curves[0]; // |VDS| = 1 V

    device::ModelFitter fitter(device::Polarity::PType,
                               device::pentaceneGeometry());
    const auto fit1 = fitter.fitLevel1(curve);
    const auto fit61 = fitter.fitLevel61(curve);

    const device::Level1Model level1(device::Polarity::PType,
                                     device::pentaceneGeometry(),
                                     fit1.params);
    const device::Level61Model level61(device::Polarity::PType,
                                       device::pentaceneGeometry(),
                                       fit61.params);

    std::printf("Fig. 4 — SPICE model fits of the pentacene transfer "
                "curve (|VDS| = 1 V)\n\n");

    Table table({"VGS (V)", "measured ID (A)", "level-1 fit (A)",
                 "level-61 fit (A)"});
    for (std::size_t i = 0; i < curve.vgs.size(); i += 10) {
        const double vgs = curve.vgs[i];
        table.row()
            .add(vgs, 3)
            .add(curve.id[i], 3)
            .add(std::abs(level1.drainCurrent(vgs, -1.0)), 3)
            .add(std::abs(level61.drainCurrent(vgs, -1.0)), 3);
    }
    table.render(std::cout);
    session.setPoints(static_cast<std::int64_t>(table.numRows()));

    Table quality({"model", "RMS log10(ID) error", "on-region RMS "
                   "relative error"});
    quality.row()
        .add("level 1 (Shichman-Hodges)")
        .add(fit1.quality.rmsLogError, 3)
        .add(fit1.quality.rmsOnRegionError, 3);
    quality.row()
        .add("level 61 (RPI TFT)")
        .add(fit61.quality.rmsLogError, 3)
        .add(fit61.quality.rmsOnRegionError, 3);
    std::printf("\n");
    quality.render(std::cout);

    std::printf("\nPaper: the level-61 model \"fits the device well "
                "when VDS = 1 V\"; the level-1 model misses the "
                "sub-VT and leakage regions (large log error).\n");
    return 0;
}
