/**
 * @file
 * Paper Fig. 12: area and clock frequency of the complex ALU (two
 * DesignWare-style pipelined multiplier/divider units) versus
 * pipeline depth, for both processes.
 *
 * Paper results this bench regenerates:
 *  - silicon frequency stops improving near 8 stages while area
 *    keeps rising slowly;
 *  - organic frequency and area grow ~linearly with depth, topping
 *    out around 22 stages (area reaching ~4x by 30 stages).
 */

#include <cstdio>
#include <iostream>

#include "core/explorer.hpp"
#include "liberty/characterizer.hpp"
#include "liberty/silicon.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace otft;

namespace {

std::size_t
runSweep(const liberty::CellLibrary &library)
{
    core::ArchExplorer explorer(library);
    const std::vector<int> stages = {1,  2,  4,  6,  8,  10, 12, 14,
                                     16, 18, 20, 22, 26, 30};
    const auto points = explorer.aluDepthSweep(stages);

    std::printf("\n== %s ==\n", library.name().c_str());
    const double f0 = points[0].frequency;
    const double a0 = points[0].area;
    Table table({"stages", "frequency", "freq (norm)", "area (norm)"});
    for (const auto &pt : points) {
        table.row()
            .add(static_cast<long long>(pt.stages))
            .add(formatSi(pt.frequency, "Hz"))
            .add(pt.frequency / f0, 4)
            .add(pt.area / a0, 4);
    }
    table.render(std::cout);

    // Knee: first depth where the next step gains under 5%.
    for (std::size_t i = 0; i + 1 < points.size(); ++i) {
        const double gain_per_stage =
            (points[i + 1].frequency / points[i].frequency - 1.0) /
            static_cast<double>(points[i + 1].stages -
                                points[i].stages);
        if (gain_per_stage < 0.02) {
            std::printf("frequency knee: ~%d stages\n",
                        points[i].stages);
            break;
        }
    }
    return points.size();
}

} // namespace

int
main(int argc, char **argv)
{
    cli::Session session("fig12_alu_depth", argc, argv,
                         cli::Footer::On);
    const auto organic = liberty::cachedOrganicLibrary();
    const auto silicon = liberty::makeSiliconLibrary();

    std::printf("Fig. 12 — complex ALU area and frequency vs pipeline "
                "depth\n");
    std::size_t points = runSweep(silicon);
    points += runSweep(organic);
    session.setPoints(static_cast<std::int64_t>(points));

    std::printf("\nPaper: silicon saturates near 8 stages; organic "
                "keeps scaling to ~22 stages with area growing to "
                "~4x.\n");
    return 0;
}
