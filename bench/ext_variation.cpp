/**
 * @file
 * Extension (paper Secs. 1, 4.1, 4.3.3): process variation and VSS
 * retuning.
 *
 * The paper measures a VT spread "within 0.5 V" across a sample and
 * argues that the pseudo-E inverter's linear VM-vs-VSS relationship
 * "gives us the flexibility to design a robust circuit: the
 * cross-sample variation of VM from process variation can be tuned by
 * applying a different VSS." This bench runs the Monte Carlo: sample
 * varied devices, measure the VM and noise-margin distribution at the
 * nominal VSS = -15 V, then let each sample pick its own VSS and show
 * the yield recovery.
 *
 * Samples are drawn from counter-based StreamRng substreams — each
 * sample's device is a pure function of (--mc-seed, sample index) —
 * and evaluated over the worker pool with ordered reduction, so the
 * table is bit-identical at any --jobs count.
 *
 * Flags: --mc-samples N, --mc-seed S (cli::Session).
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "cells/topologies.hpp"
#include "cells/vtc.hpp"
#include "device/variation.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/stream_rng.hpp"
#include "util/table.hpp"

using namespace otft;

namespace {

struct Sample
{
    double vmNominal = 0.0;
    double nmNominal = 0.0;
    double vmTuned = 0.0;
    double nmTuned = 0.0;
    double chosenVss = -15.0;
};

/** Noise margin = min(NMH, NML) of the sampled inverter at a VSS. */
cells::VtcResult
measure(const device::Level61Params &params, double vss)
{
    cells::SupplyConfig supply{5.0, vss};
    cells::CellFactory factory(params, cells::CellSizing{}, supply);
    auto cell = factory.inverter(cells::InverterKind::PseudoE);
    cells::VtcAnalyzer analyzer(81);
    return analyzer.analyze(cell);
}

} // namespace

int
main(int argc, char **argv)
{
    cli::Session session("ext_variation", argc, argv, cli::Footer::On);
    std::printf("Extension — Monte Carlo variation and per-sample VSS "
                "retuning (VDD = 5 V)\n\n");

    // Batch-to-batch corners: the published 0.5 V spread is within
    // one sample; deposition-run corners move VT and mobility much
    // farther, and those are what a per-board VSS trim compensates.
    device::VariationConfig corners;
    corners.vtSigma = 0.45;
    corners.mobilityLnSigma = 0.30;
    const device::VariationModel variation(corners);
    const StreamRng root(session.mcSeed(), "ext_variation");
    const device::Level61Params nominal;

    const int n_samples = session.mcSamples();
    constexpr double vm_target = 2.5;
    constexpr double vm_window = 0.35; // |VM - VDD/2| acceptance
    constexpr double nm_floor = 0.30;  // volts

    const std::vector<double> vss_grid = {-20.0, -17.5, -15.0, -12.5,
                                          -10.0};
    const std::vector<Sample> samples = parallel::orderedMap<Sample>(
        static_cast<std::size_t>(n_samples), [&](std::size_t i) {
            StreamRng rng = root.substream(i);
            const auto params = variation.sample(nominal, rng);
            Sample s;
            const auto at_nominal = measure(params, -15.0);
            s.vmNominal = at_nominal.vm;
            s.nmNominal = std::min(at_nominal.nmh, at_nominal.nml);

            // Retune: pick the VSS that best centers VM.
            double best_err = 1e9;
            for (double vss : vss_grid) {
                const auto r = measure(params, vss);
                const double err = std::abs(r.vm - vm_target);
                if (err < best_err) {
                    best_err = err;
                    s.vmTuned = r.vm;
                    s.nmTuned = std::min(r.nmh, r.nml);
                    s.chosenVss = vss;
                }
            }
            return s;
        });

    auto yield = [&](auto field_vm, auto field_nm) {
        int pass = 0;
        for (const auto &s : samples)
            if (std::abs(field_vm(s) - vm_target) < vm_window &&
                field_nm(s) > nm_floor)
                ++pass;
        return 100.0 * pass / n_samples;
    };

    Table table({"sample", "VM @-15V", "NM @-15V", "chosen VSS",
                 "VM tuned", "NM tuned"});
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const auto &s = samples[i];
        table.row()
            .add(static_cast<long long>(i))
            .add(s.vmNominal, 3)
            .add(s.nmNominal, 3)
            .add(s.chosenVss, 3)
            .add(s.vmTuned, 3)
            .add(s.nmTuned, 3);
    }
    table.render(std::cout);
    session.setPoints(n_samples);

    const double y0 = yield([](const Sample &s) { return s.vmNominal; },
                            [](const Sample &s) { return s.nmNominal; });
    const double y1 = yield([](const Sample &s) { return s.vmTuned; },
                            [](const Sample &s) { return s.nmTuned; });
    std::printf("\nyield (|VM - 2.5| < %.1f V and NM > %.2f V): "
                "%.0f%% at fixed VSS -> %.0f%% with per-sample VSS\n",
                vm_window, nm_floor, y0, y1);
    std::printf("Paper claim check: the VM-vs-VSS linearity is a "
                "variation-compensation knob.\n");
    session.addFooterField("yield_fixed_vss", y0);
    session.addFooterField("yield_tuned_vss", y1);
    return 0;
}
