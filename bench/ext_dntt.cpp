/**
 * @file
 * Extension (paper Secs. 5.3 & 6.2): higher-mobility organic
 * semiconductors.
 *
 * "Opportunities also exist to improve the performance of OTFTs by
 * ... using higher-performance organic semiconductors such as DNTT,
 * which has roughly 10x the mobility of the archetypal pentacene used
 * here."
 *
 * This bench re-characterizes the whole organic library with a
 * DNTT-class device (10x band mobility, same topology and sizing) and
 * reruns the baseline core, quantifying how much of the mobility gain
 * survives to the architecture level. The paper's related work cites
 * a 2.1 kHz hybrid-technology microprocessor as the state of the art
 * — a DNTT-class library should put the 9-stage core in that regime.
 */

#include <cstdio>
#include <iostream>

#include "core/synthesizer.hpp"
#include "liberty/characterizer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace otft;

int
main(int argc, char **argv)
{
    cli::Session session("ext_dntt", argc, argv, cli::Footer::On);
    std::printf("Extension — pentacene vs DNTT-class organic "
                "library\n\n");

    const auto pentacene = liberty::cachedOrganicLibrary();

    const auto dntt = liberty::cachedDnttLibrary();

    Table cells_table({"metric", "pentacene", "DNTT-class", "ratio"});
    const auto &p_inv = pentacene.cell("inv");
    const auto &d_inv = dntt.cell("inv");
    const double p_fo4 = p_inv.arc(0).worstDelay(
        pentacene.defaultSlew(), 4.0 * p_inv.inputCap);
    const double d_fo4 = d_inv.arc(0).worstDelay(dntt.defaultSlew(),
                                                 4.0 * d_inv.inputCap);
    cells_table.row()
        .add("inverter FO4")
        .add(formatSi(p_fo4, "s"))
        .add(formatSi(d_fo4, "s"))
        .add(p_fo4 / d_fo4, 3);
    const double p_clkq = pentacene.cell("dff").flop.clkToQ;
    const double d_clkq = dntt.cell("dff").flop.clkToQ;
    cells_table.row()
        .add("DFF clk->Q")
        .add(formatSi(p_clkq, "s"))
        .add(formatSi(d_clkq, "s"))
        .add(p_clkq / d_clkq, 3);
    cells_table.render(std::cout);

    std::printf("\n9-stage baseline core:\n");
    Table core_table({"library", "frequency", "vs pentacene"});
    double p_freq = 0.0;
    for (const liberty::CellLibrary *lib : {&pentacene, &dntt}) {
        core::CoreSynthesizer synth(*lib);
        const auto timing = synth.synthesize(arch::baselineConfig());
        if (lib == &pentacene)
            p_freq = timing.frequency;
        core_table.row()
            .add(lib == &pentacene ? "pentacene" : "DNTT-class")
            .add(formatSi(timing.frequency, "Hz"))
            .add(timing.frequency / p_freq, 3);
    }
    core_table.render(std::cout);
    session.setPoints(static_cast<std::int64_t>(
        cells_table.numRows() + core_table.numRows()));

    std::printf("\nContext: the paper cites an 8-bit hybrid "
                "oxide-organic microprocessor at 2.1 kHz (Myny et "
                "al., ISSCC'14) as the device-technology headroom "
                "over its 40-Hz-class organic predecessor; a "
                "10x-mobility library moves this framework's core "
                "into the same regime.\n");
    return 0;
}
