/**
 * @file
 * Paper Fig. 3: ID-VGS transfer characteristics of a pentacene OTFT.
 *
 * Measures the golden pentacene device at |VDS| = 1 V and 10 V on the
 * synthetic instrument bench, prints the sampled curves (decimated)
 * and the extracted figures of merit next to the published values:
 * W/L = 1000/80 um, mobility 0.16 cm^2/Vs, SS 350 mV/dec, on/off 1e6,
 * VT -1.3 V (VDS = 1 V) / +1.3 V (VDS = 10 V).
 */

#include <cstdio>
#include <iostream>

#include "device/extraction.hpp"
#include "device/measurement.hpp"
#include "device/pentacene.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace otft;

int
main(int argc, char **argv)
{
    cli::Session session("fig03_transfer_curve", argc, argv,
                         cli::Footer::On);
    const auto curves = device::measurePentaceneFig3();
    const device::ParameterExtractor extractor(
        device::Polarity::PType, device::pentaceneGeometry());

    std::printf("Fig. 3 — pentacene OTFT transfer characteristics "
                "(W/L = 1000/80 um)\n\n");

    Table curve_table({"VGS (V)", "ID @|VDS|=1V (A)", "IG (A)",
                       "ID @|VDS|=10V (A)"});
    for (std::size_t i = 0; i < curves[0].vgs.size(); i += 10) {
        curve_table.row()
            .add(curves[0].vgs[i], 3)
            .add(curves[0].id[i], 3)
            .add(curves[0].ig[i], 3)
            .add(curves[1].id[i], 3);
    }
    curve_table.render(std::cout);
    session.setPoints(static_cast<std::int64_t>(
        curve_table.numRows()));

    Table fom({"parameter", "paper", "measured @1V", "measured @10V"});
    const auto p1 = extractor.extract(curves[0]);
    const auto p10 = extractor.extract(curves[1]);
    fom.row()
        .add("mobility (cm^2/Vs)")
        .add("0.16")
        .add(p1.mobility * 1e4, 3)
        .add(p10.mobility * 1e4, 3);
    fom.row()
        .add("VT (V)")
        .add("-1.3 / +1.3")
        .add(p1.vt, 3)
        .add(p10.vt, 3);
    fom.row()
        .add("SS (mV/dec)")
        .add("350")
        .add(p1.ss * 1e3, 3)
        .add(p10.ss * 1e3, 3);
    fom.row()
        .add("on/off ratio")
        .add("1e6")
        .add(p1.onOffRatio, 3)
        .add(p10.onOffRatio, 3);
    std::printf("\n");
    fom.render(std::cout);
    return 0;
}
