/**
 * @file
 * Extension (paper Sec. 1): Monte Carlo statistical characterization
 * of the organic library.
 *
 * The paper's flow characterizes one nominal library and reports one
 * number per figure; its own Sec. 1 says OTFT processes spread VT by
 * up to 0.5 V across a sample. This bench runs the statistical
 * re-characterization: N process samples (die-to-die + per-device
 * components) through the transistor-level NLDM flow, reduced to a
 * mean library and derated 3-sigma slow/fast corners, written as
 * liberty text files:
 *
 *     <prefix>_mean.lib  <prefix>_slow.lib  <prefix>_fast.lib
 *
 * The serialized output is bit-identical for a fixed --mc-seed at any
 * --jobs count — `--check` re-validates files from a previous run
 * (finite tables, monotone slow >= mean >= fast) so CI can assert the
 * contract end to end.
 *
 * Flags: --mc-samples N, --mc-seed S (cli::Session), --out-prefix P,
 * --check.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "liberty/mc_characterizer.hpp"
#include "liberty/serialize.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

using namespace otft;

int
main(int argc, char **argv)
{
    cli::Session session("mc_characterize", argc, argv,
                         cli::Footer::On);

    std::string prefix = "organic_mc";
    bool check_only = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out-prefix") == 0 &&
            i + 1 < argc) {
            prefix = argv[++i];
        } else if (std::strcmp(argv[i], "--check") == 0) {
            check_only = true;
        } else {
            fatal("mc_characterize: unknown argument '", argv[i],
                  "'");
        }
    }
    const std::string mean_path = prefix + "_mean.lib";
    const std::string slow_path = prefix + "_slow.lib";
    const std::string fast_path = prefix + "_fast.lib";

    if (check_only) {
        // Validate a previous run's artifacts without
        // re-characterizing.
        const liberty::CellLibrary mean =
            liberty::loadLibrary(mean_path);
        const liberty::CellLibrary slow =
            liberty::loadLibrary(slow_path);
        const liberty::CellLibrary fast =
            liberty::loadLibrary(fast_path);
        const std::string err =
            liberty::validateStatLibrary(mean, slow, fast);
        if (!err.empty())
            fatal("mc_characterize --check: ", err);
        std::printf("check ok: %s (%zu cells), corners finite and "
                    "monotone\n",
                    mean.name().c_str(), mean.cellNames().size());
        session.setPoints(
            static_cast<std::int64_t>(mean.cellNames().size()));
        return 0;
    }

    liberty::McConfig config;
    config.samples = session.mcSamples();
    config.seed = session.mcSeed();
    config.baseName = prefix;
    std::printf("Monte Carlo characterization: %d samples, seed %llu, "
                "%.1f-sigma corners\n\n",
                config.samples,
                static_cast<unsigned long long>(config.seed),
                config.cornerSigma);

    const liberty::McCharacterizer mc(config);
    const liberty::StatLibrary stat = mc.run();

    const std::string err = liberty::validateStatLibrary(
        stat.mean, stat.slow, stat.fast);
    if (!err.empty())
        fatal("mc_characterize: invalid statistical library: ", err);

    Table table({"cell", "leak mean [W]", "leak sigma", "delay sigma/mean"});
    double sigma_fraction_sum = 0.0;
    for (const liberty::CellStats &cell : stat.cells) {
        const double frac = cell.meanDelaySigmaFraction();
        sigma_fraction_sum += frac;
        table.row()
            .add(cell.name)
            .add(cell.leakageMean, 4)
            .add(cell.leakageSigma, 4)
            .add(frac, 4);
    }
    table.render(std::cout);
    const double mean_sigma_fraction =
        sigma_fraction_sum / static_cast<double>(stat.cells.size());

    liberty::saveLibrary(mean_path, stat.mean);
    liberty::saveLibrary(slow_path, stat.slow);
    liberty::saveLibrary(fast_path, stat.fast);
    std::printf("\nwrote %s, %s, %s\n", mean_path.c_str(),
                slow_path.c_str(), fast_path.c_str());
    std::printf("mean relative delay sigma: %.3f (3-sigma slow corner "
                "is ~%.0f%% slower than mean)\n",
                mean_sigma_fraction,
                100.0 * stat.cornerSigma * mean_sigma_fraction);

    session.setPoints(static_cast<std::int64_t>(stat.cells.size()) *
                      config.samples);
    session.addFooterField("mc_samples",
                           static_cast<double>(config.samples));
    session.addFooterField("delay_sigma_fraction",
                           mean_sigma_fraction);
    return 0;
}
