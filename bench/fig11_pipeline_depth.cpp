/**
 * @file
 * Paper Fig. 11: core area and performance versus pipeline depth
 * (9-15 stages) for the silicon and organic processes.
 *
 * Reproduces the paper's methodology: start from the 9-stage AnyCore
 * baseline and repeatedly cut the stage on the critical path under
 * each technology library; IPC comes from the cycle-level core model
 * on Dhrystone + six SPEC CPU2000-profile workloads; performance is
 * IPC x frequency normalized to the 9-stage baseline.
 *
 * Paper results this bench regenerates:
 *  - areas stay roughly flat with depth for both processes (11a);
 *  - silicon peaks at 10-11 stages (11b);
 *  - organic peaks at 14-15 stages (11c);
 *  - baseline frequencies ~800 MHz (silicon) and ~200 Hz (organic).
 */

#include <cstdio>
#include <iostream>

#include "core/explorer.hpp"
#include "liberty/characterizer.hpp"
#include "liberty/silicon.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace otft;

namespace {

std::size_t
runSweep(const liberty::CellLibrary &library)
{
    core::ExplorerConfig config;
    config.instructions = 100000;
    core::ArchExplorer explorer(library, config);
    const core::DepthSweep sweep = explorer.depthSweep(15);

    std::printf("\n== %s ==\n", library.name().c_str());
    std::printf("baseline (9-stage) frequency: %s\n",
                formatSi(sweep.points[0].timing.frequency, "Hz").c_str());

    const double f0 = sweep.points[0].timing.frequency;
    const double a0 = sweep.points[0].timing.area;

    // Fig. 11(a): normalized core area per depth.
    Table area({"stages", "area (norm)", "frequency (norm)",
                "critical stage"});
    for (const auto &pt : sweep.points) {
        area.row()
            .add(static_cast<long long>(pt.config.totalStages()))
            .add(pt.timing.area / a0, 4)
            .add(pt.timing.frequency / f0, 4)
            .add(arch::toString(pt.timing.critical));
    }
    area.render(std::cout);

    // Fig. 11(b/c): per-benchmark normalized performance.
    std::vector<std::string> headers = {"stages"};
    for (const auto &name : sweep.workloadNames)
        headers.push_back(name);
    headers.push_back("mean");
    Table perf(std::move(headers));

    // Per-benchmark baselines.
    std::vector<double> base;
    for (double ipc : sweep.points[0].ipc)
        base.push_back(ipc * f0);

    int best_stage = 0;
    double best_perf = 0.0;
    for (const auto &pt : sweep.points) {
        perf.row().add(
            static_cast<long long>(pt.config.totalStages()));
        for (std::size_t w = 0; w < pt.ipc.size(); ++w)
            perf.add(pt.ipc[w] * pt.timing.frequency / base[w], 4);
        const double rel =
            pt.performance / sweep.points[0].performance;
        perf.add(rel, 4);
        if (rel > best_perf) {
            best_perf = rel;
            best_stage = pt.config.totalStages();
        }
    }
    std::printf("\n");
    perf.render(std::cout);
    std::printf("optimal depth: %d stages (%.2fx baseline "
                "performance)\n", best_stage, best_perf);
    return sweep.points.size();
}

} // namespace

int
main(int argc, char **argv)
{
    cli::Session session("fig11_pipeline_depth", argc, argv,
                         cli::Footer::On);
    const auto organic = liberty::cachedOrganicLibrary();
    const auto silicon = liberty::makeSiliconLibrary();

    std::printf("Fig. 11 — core area and performance vs pipeline "
                "depth\n");
    std::size_t points = runSweep(silicon);
    points += runSweep(organic);
    session.setPoints(static_cast<std::int64_t>(points));

    std::printf("\nPaper: silicon optimum at 10-11 stages, organic at "
                "14-15; areas roughly flat; baselines ~800 MHz / "
                "~200 Hz.\n");
    return 0;
}
