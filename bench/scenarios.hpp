/**
 * @file
 * The perf_suite scenario registry: one benchmark scenario per layer
 * of the paper flow (device -> circuit -> cells -> liberty -> netlist
 * -> sta -> workload -> arch -> core), registered into a
 * perf::ScenarioSuite. Kept in a library so the perf_suite binary and
 * the perf_smoke integration test run the identical set.
 */

#ifndef OTFT_BENCH_SCENARIOS_HPP
#define OTFT_BENCH_SCENARIOS_HPP

#include "util/perf_report.hpp"

namespace otft::bench {

/**
 * Register the full scenario set (ten scenarios, every flow layer).
 * Fixtures are built lazily in each scenario's setup hook and shared
 * across scenarios, so `--filter` only pays for what it runs.
 */
void registerAllScenarios(perf::ScenarioSuite &suite);

} // namespace otft::bench

#endif // OTFT_BENCH_SCENARIOS_HPP
