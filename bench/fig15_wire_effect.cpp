/**
 * @file
 * Paper Fig. 15: frequency trends for ALUs and cores with and without
 * wire cost, isolating the paper's central mechanism.
 *
 * Paper results this bench regenerates:
 *  - (a) ALU frequency vs stages: removing wire barely moves the
 *    organic curve (organic wires are already ~free) but lifts and
 *    deepens the silicon curve;
 *  - (b) core frequency vs stages: the 14-stage organic core reaches
 *    ~2x its baseline frequency while silicon reaches only ~1.5x;
 *    without wire cost the silicon design behaves like the organic
 *    one (higher frequency, deeper optimal pipeline).
 */

#include <cstdio>
#include <iostream>

#include "core/explorer.hpp"
#include "liberty/characterizer.hpp"
#include "liberty/silicon.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace otft;

namespace {

std::vector<core::AluPoint>
aluSweep(const liberty::CellLibrary &library, bool wire)
{
    core::ExplorerConfig config;
    config.sta.wireEnabled = wire;
    core::ArchExplorer explorer(library, config);
    return explorer.aluDepthSweep({1, 2, 4, 8, 12, 16, 22, 30});
}

std::vector<std::pair<int, double>>
coreSweep(const liberty::CellLibrary &library, bool wire)
{
    core::ExplorerConfig config;
    config.instructions = 1000; // frequency only
    config.sta.wireEnabled = wire;
    core::ArchExplorer explorer(library, config);
    const auto sweep = explorer.depthSweep(15);
    std::vector<std::pair<int, double>> out;
    for (const auto &pt : sweep.points)
        out.emplace_back(pt.config.totalStages(),
                         pt.timing.frequency);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    cli::Session session("fig15_wire_effect", argc, argv,
                         cli::Footer::On);
    std::size_t points = 0;
    const auto organic = liberty::cachedOrganicLibrary();
    const auto silicon = liberty::makeSiliconLibrary();

    std::printf("Fig. 15(a) — ALU frequency vs stages, with and "
                "without wire\n\n");
    {
        const auto si_w = aluSweep(silicon, true);
        const auto si_nw = aluSweep(silicon, false);
        const auto org_w = aluSweep(organic, true);
        const auto org_nw = aluSweep(organic, false);
        Table table({"stages", "Si (norm)", "Si w/o wire", "Org (norm)",
                     "Org w/o wire"});
        points += si_w.size();
        for (std::size_t i = 0; i < si_w.size(); ++i) {
            table.row()
                .add(static_cast<long long>(si_w[i].stages))
                .add(si_w[i].frequency / si_w[0].frequency, 4)
                .add(si_nw[i].frequency / si_w[0].frequency, 4)
                .add(org_w[i].frequency / org_w[0].frequency, 4)
                .add(org_nw[i].frequency / org_w[0].frequency, 4);
        }
        table.render(std::cout);
    }

    std::printf("\nFig. 15(b) — core frequency vs stages, with and "
                "without wire\n\n");
    {
        const auto si_w = coreSweep(silicon, true);
        const auto si_nw = coreSweep(silicon, false);
        const auto org_w = coreSweep(organic, true);
        const auto org_nw = coreSweep(organic, false);
        Table table({"stages", "Si (norm)", "Si w/o wire", "Org (norm)",
                     "Org w/o wire"});
        const std::size_t n =
            std::min(std::min(si_w.size(), si_nw.size()),
                     std::min(org_w.size(), org_nw.size()));
        points += n;
        for (std::size_t i = 0; i < n; ++i) {
            table.row()
                .add(static_cast<long long>(si_w[i].first))
                .add(si_w[i].second / si_w[0].second, 4)
                .add(si_nw[i].second / si_w[0].second, 4)
                .add(org_w[i].second / org_w[0].second, 4)
                .add(org_nw[i].second / org_w[0].second, 4);
        }
        table.render(std::cout);

        // The paper's 14-stage comparison.
        for (std::size_t i = 0; i < n; ++i) {
            if (si_w[i].first == 14) {
                std::printf("\n14-stage frequency vs own baseline: "
                            "silicon %.2fx (paper ~1.5x), organic "
                            "%.2fx (paper ~2.0x)\n",
                            si_w[i].second / si_w[0].second,
                            org_w[i].second / org_w[0].second);
            }
        }
    }

    std::printf("\nPaper: without wire cost the amount of logic per "
                "stage becomes similar for both processes; the "
                "silicon curve moves toward the organic one.\n");
    session.setPoints(static_cast<std::int64_t>(points));
    return 0;
}
