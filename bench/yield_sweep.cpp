/**
 * @file
 * Extension (paper Secs. 1, 5.3, 5.4): yield-aware architecture
 * sign-off under process variation.
 *
 * The paper's depth/width sweeps (Figs. 11/13) report expected-process
 * frequency. A flexible-electronics product instead bins at a target
 * parametric yield: the sign-off clock is the one a chosen fraction of
 * manufactured foils actually meets. This bench derives Gaussian
 * clock-period models from the statistical corner libraries
 * (liberty/mc_characterizer) and emits:
 *
 *  1. yield-vs-frequency curves for the baseline core under both the
 *     pentacene Monte Carlo library and the silicon library with
 *     analytic SS/FF-style corners;
 *  2. the paper's depth sweep (Fig. 11) re-based at the target yield;
 *  3. a width sweep corner (Fig. 13) re-based at the target yield.
 *
 * The organic statistical library is loaded from
 * organic_mc_{mean,slow,fast}.lib when a previous mc_characterize run
 * left them in the working directory, and characterized on the fly
 * (--mc-samples / --mc-seed) otherwise.
 *
 * Flags: --mc-samples N, --mc-seed S, --mc-yield Y (cli::Session).
 */

#include <cstdio>
#include <iostream>
#include <optional>

#include "core/yield_explorer.hpp"
#include "liberty/serialize.hpp"
#include "liberty/silicon.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace otft;

namespace {

/** Load the organic corner triple, characterizing if missing. */
liberty::StatLibrary
organicStatLibrary(const cli::Session &session)
{
    const std::string prefix = "organic_mc";
    std::optional<liberty::CellLibrary> mean =
        liberty::tryLoadLibrary(prefix + "_mean.lib");
    std::optional<liberty::CellLibrary> slow =
        liberty::tryLoadLibrary(prefix + "_slow.lib");
    std::optional<liberty::CellLibrary> fast =
        liberty::tryLoadLibrary(prefix + "_fast.lib");
    if (mean && slow && fast) {
        std::printf("loaded cached %s_{mean,slow,fast}.lib\n",
                    prefix.c_str());
        liberty::StatLibrary stat{std::move(*mean), std::move(*slow),
                                  std::move(*fast), {}, 0, 0, 3.0};
        return stat;
    }
    liberty::McConfig config;
    config.samples = session.mcSamples();
    config.seed = session.mcSeed();
    config.baseName = prefix;
    std::printf("characterizing %d Monte Carlo samples (seed %llu)\n",
                config.samples,
                static_cast<unsigned long long>(config.seed));
    liberty::StatLibrary stat =
        liberty::McCharacterizer(config).run();
    liberty::saveLibrary(prefix + "_mean.lib", stat.mean);
    liberty::saveLibrary(prefix + "_slow.lib", stat.slow);
    liberty::saveLibrary(prefix + "_fast.lib", stat.fast);
    return stat;
}

/** Print one yield-vs-frequency curve. */
void
printCurve(const core::YieldCurve &curve)
{
    std::printf("\n== %s: yield vs frequency (baseline core) ==\n",
                curve.libraryName.c_str());
    std::printf("mean period %s, sigma %s\n",
                formatSi(curve.meanPeriod, "s").c_str(),
                formatSi(curve.periodSigma, "s").c_str());
    Table table({"frequency", "yield"});
    for (const core::YieldPoint &point : curve.points)
        table.row()
            .add(formatSi(point.frequency, "Hz"))
            .add(point.yield, 4);
    table.render(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    cli::Session session("yield_sweep", argc, argv, cli::Footer::On);
    const double target_yield = session.mcYield();
    std::printf("Yield-aware exploration at %.1f%% target yield\n\n",
                100.0 * target_yield);
    std::int64_t points = 0;

    // -- Technologies: organic Monte Carlo corners + silicon analytic
    // corners (a mature process; ~1.5% per-entry sigma puts the SS
    // corner ~4.5% off mean, the usual mature-node spread).
    const liberty::StatLibrary organic = organicStatLibrary(session);
    const liberty::StatLibrary silicon = liberty::scaledCorners(
        liberty::makeSiliconLibrary(), 0.015, 3.0, "silicon");

    core::YieldExplorerConfig config;
    config.targetYield = target_yield;
    core::YieldExplorer organic_explorer(organic, config);
    core::YieldExplorer silicon_explorer(silicon, config);

    // -- 1. Yield-vs-frequency curves, both technologies.
    const arch::CoreConfig baseline = arch::baselineConfig();
    const core::YieldCurve organic_curve =
        organic_explorer.yieldCurve(baseline, 13);
    const core::YieldCurve silicon_curve =
        silicon_explorer.yieldCurve(baseline, 13);
    printCurve(organic_curve);
    printCurve(silicon_curve);
    points += 26;

    std::printf("\nsign-off frequency at %.1f%% yield: organic %s "
                "(mean-process %s), silicon %s\n",
                100.0 * target_yield,
                formatSi(organic_curve.frequencyAtYield(target_yield),
                         "Hz")
                    .c_str(),
                formatSi(1.0 / organic_curve.meanPeriod, "Hz").c_str(),
                formatSi(silicon_curve.frequencyAtYield(target_yield),
                         "Hz")
                    .c_str());

    // -- 2. Depth sweep at yield (Fig. 11 variant, organic).
    const core::YieldDepthSweep depth =
        organic_explorer.depthSweepAtYield(15);
    std::printf("\n== %s: depth sweep at %.1f%% yield ==\n",
                depth.libraryName.c_str(), 100.0 * target_yield);
    Table depth_table({"stages", "f mean", "f @yield", "perf (norm)",
                       "perf @yield (norm)"});
    const double perf0 = depth.points[0].nominal.performance;
    const double yperf0 = depth.points[0].yieldPerformance;
    int best_mean = 0, best_yield = 0;
    for (std::size_t i = 0; i < depth.points.size(); ++i) {
        const core::YieldDesignPoint &pt = depth.points[i];
        depth_table.row()
            .add(static_cast<long long>(
                pt.nominal.config.totalStages()))
            .add(formatSi(pt.nominal.timing.frequency, "Hz"))
            .add(formatSi(pt.yieldFrequency, "Hz"))
            .add(pt.nominal.performance / perf0, 4)
            .add(pt.yieldPerformance / yperf0, 4);
        if (pt.nominal.performance >
            depth.points[static_cast<std::size_t>(best_mean)]
                .nominal.performance)
            best_mean = static_cast<int>(i);
        if (pt.yieldPerformance >
            depth.points[static_cast<std::size_t>(best_yield)]
                .yieldPerformance)
            best_yield = static_cast<int>(i);
    }
    depth_table.render(std::cout);
    std::printf("best depth: %d stages at the mean process, %d at "
                "%.1f%% yield\n",
                depth.points[static_cast<std::size_t>(best_mean)]
                    .nominal.config.totalStages(),
                depth.points[static_cast<std::size_t>(best_yield)]
                    .nominal.config.totalStages(),
                100.0 * target_yield);
    points += static_cast<std::int64_t>(depth.points.size());

    // -- 3. Width sweep corner at yield (Fig. 13 variant, organic;
    // the 1-3 x 3-5 corner of the paper's grid keeps the bench brisk
    // while still spanning narrow-vs-wide).
    const core::YieldWidthSweep width =
        organic_explorer.widthSweepAtYield(1, 3, 3, 5);
    std::printf("\n== %s: width sweep at %.1f%% yield "
                "(perf normalized to 1-wide) ==\n",
                width.libraryName.c_str(), 100.0 * target_yield);
    Table width_table(
        {"fe x be", "f mean", "f @yield", "perf @yield (norm)"});
    const double wperf0 = width.points[0][0].yieldPerformance;
    for (std::size_t be = 0; be < width.points.size(); ++be) {
        for (std::size_t fe = 0; fe < width.points[be].size(); ++fe) {
            const core::YieldDesignPoint &pt = width.points[be][fe];
            char label[32];
            std::snprintf(label, sizeof label, "%dx%d",
                          width.feMin + static_cast<int>(fe),
                          width.beMin + static_cast<int>(be));
            width_table.row()
                .add(label)
                .add(formatSi(pt.nominal.timing.frequency, "Hz"))
                .add(formatSi(pt.yieldFrequency, "Hz"))
                .add(pt.yieldPerformance / wperf0, 4);
            ++points;
        }
    }
    width_table.render(std::cout);

    session.setPoints(points);
    session.addFooterField("target_yield", target_yield);
    session.addFooterField("organic_f_yield",
                           organic_curve.frequencyAtYield(target_yield));
    session.addFooterField("silicon_f_yield",
                           silicon_curve.frequencyAtYield(target_yield));
    return 0;
}
