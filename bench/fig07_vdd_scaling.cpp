/**
 * @file
 * Paper Fig. 7: pseudo-E inverter at VDD = 5 / 10 / 15 V.
 *
 * Paper values (VDD 5/10/15 V, VSS -15/-20/-15 V):
 * VM 2.4/4.6/7.7 V, max gain 3.2/2.9/3.0, NMH 1.2/2.1/3.0 V,
 * NML 1.3/1.9/3.5 V, static power (VIN=0) 13/98/215 uW,
 * static power (VIN=VDD) <0.01/<0.01/0.83 uW. The key takeaway the
 * paper draws: reducing VDD to 5 V cuts worst-case static power to
 * ~6% of the 15 V value while the VTC keeps its shape, so the
 * simulation flow fixes VDD = 5 V.
 */

#include <cstdio>
#include <iostream>

#include "cells/topologies.hpp"
#include "cells/vtc.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace otft;

int
main(int argc, char **argv)
{
    cli::Session session("fig07_vdd_scaling", argc, argv,
                         cli::Footer::On);
    struct Point
    {
        double vdd;
        double vss;
    };
    const Point points[] = {{5.0, -15.0}, {10.0, -20.0}, {15.0, -15.0}};

    std::printf("Fig. 7 — pseudo-E inverter across VDD\n\n");

    Table table({"VDD (V)", "VSS (V)", "VM (V)", "max gain", "NMH (V)",
                 "NML (V)", "NM %VDD", "P(VIN=0) uW",
                 "P(VIN=VDD) uW"});
    double p_low_5 = 0.0, p_low_15 = 0.0;
    for (const Point &pt : points) {
        cells::SupplyConfig supply{pt.vdd, pt.vss};
        cells::CellFactory factory(device::Level61Params{},
                                   cells::CellSizing{}, supply);
        cells::BuiltCell cell =
            factory.inverter(cells::InverterKind::PseudoE);
        cells::VtcAnalyzer analyzer(151);
        const auto r = analyzer.analyze(cell);
        if (pt.vdd == 5.0)
            p_low_5 = r.staticPowerLow;
        if (pt.vdd == 15.0)
            p_low_15 = r.staticPowerLow;
        table.row()
            .add(pt.vdd, 3)
            .add(pt.vss, 3)
            .add(r.vm, 3)
            .add(r.maxGain, 3)
            .add(r.nmh, 3)
            .add(r.nml, 3)
            .add(100.0 * 0.5 * (r.nmh + r.nml) / pt.vdd, 3)
            .add(r.staticPowerLow * 1e6, 3)
            .add(r.staticPowerHigh * 1e6, 3);
    }
    table.render(std::cout);
    session.setPoints(static_cast<std::int64_t>(table.numRows()));

    std::printf("\nPaper: VM 2.4/4.6/7.7 V, gain ~3, NM 20-25%% VDD, "
                "P(VIN=0) 13/98/215 uW.\n");
    std::printf("Measured 5 V static power is %.0f%% of the 15 V "
                "value (paper: ~6%%).\n",
                100.0 * p_low_5 / p_low_15);
    return 0;
}
