/**
 * @file
 * Extension (paper Sec. 7 future work): dynamic unipolar logic.
 *
 * "...unipolar transistor design favors the use of dynamic logic
 * because only roughly half the transistors are needed and switching
 * time can be faster with the tradeoff being possibly worse power
 * requirements."
 *
 * This bench builds precharge/evaluate dynamic gates next to the
 * static pseudo-E gates and quantifies all three claims: transistor
 * count, evaluate delay, and per-cycle clocking energy, plus the
 * dynamic-node droop that limits minimum clock rates.
 */

#include <cstdio>
#include <iostream>

#include "cells/topologies.hpp"
#include "circuit/transient.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace otft;

namespace {

struct DynamicResult
{
    double evalDelay = 0.0;
    double prechargeEnergy = 0.0;
    double droopAfter50ms = 0.0;
};

DynamicResult
measureDynamic(const cells::CellFactory &factory, int fan_in)
{
    auto cell = factory.dynamicGate(fan_in, factory.inputCap());
    const double vdd = factory.supply().vdd;
    auto &ckt = cell.ckt;

    // Inputs high (evaluate network off) until t_eval, then input A
    // falls. Clock: precharge (clk at -5 V) until t_pre, then off.
    const double t_pre = 0.4e-3;
    const double t_eval = 0.6e-3;
    for (std::size_t i = 0; i + 1 < cell.inputSources.size(); ++i)
        ckt.setSourceWave(cell.inputSources[i],
                          circuit::Pwl::constant(vdd));
    ckt.setSourceWave(
        cell.inputSources[0],
        circuit::Pwl::points({0.0, t_eval, t_eval + 5e-6},
                             {vdd, vdd, 0.0}));
    ckt.setSourceWave(
        cell.inputSources.back(),
        circuit::Pwl::points({0.0, t_pre, t_pre + 5e-6},
                             {-5.0, -5.0, vdd}));

    circuit::TransientConfig config;
    config.dt = 1e-6;
    config.tStop = 1.6e-3;
    circuit::TransientAnalysis tran(ckt);
    const auto result = tran.run(config);
    const auto in = result.node(cell.inputs[0]);
    const auto out = result.node(cell.out);

    DynamicResult r;
    r.evalDelay = circuit::measureDelay(in, out, 0.0, vdd, false, 0.0,
                                        vdd, true, t_eval);
    // Precharge energy: supply charge moved per cycle ~ C_out * VDD^2.
    r.prechargeEnergy =
        result.sourceEnergy(cell.vddSource, vdd, t_eval, 1.6e-3);
    return r;
}

double
measureDroop(const cells::CellFactory &factory)
{
    // Evaluate the gate high, then hold with everything off: the
    // dynamic node leaks away — this sets the minimum clock rate.
    auto cell = factory.dynamicGate(2, factory.inputCap());
    const double vdd = factory.supply().vdd;
    auto &ckt = cell.ckt;
    // A low (eval on) briefly, then off; clock off the whole time.
    ckt.setSourceWave(cell.inputSources[0],
                      circuit::Pwl::points({0.0, 0.4e-3, 0.41e-3},
                                           {0.0, 0.0, vdd}));
    ckt.setSourceWave(cell.inputSources[1],
                      circuit::Pwl::constant(vdd));
    ckt.setSourceWave(cell.inputSources.back(),
                      circuit::Pwl::constant(vdd));

    circuit::TransientConfig config;
    config.dt = 0.2e-3;
    config.tStop = 60e-3;
    circuit::TransientAnalysis tran(ckt);
    const auto result = tran.run(config);
    const auto out = result.node(cell.out);
    return out.at(0.5e-3) - out.at(50e-3);
}

} // namespace

int
main(int argc, char **argv)
{
    cli::Session session("ext_dynamic_logic", argc, argv,
                         cli::Footer::On);
    std::printf("Extension — dynamic vs static pseudo-E unipolar "
                "logic\n\n");
    cells::CellFactory factory;

    Table table({"gate", "transistors", "eval delay",
                 "precharge energy/cycle"});
    for (int fan_in : {1, 2, 3}) {
        const auto d = measureDynamic(factory, fan_in);
        const auto cell = factory.dynamicGate(fan_in);
        table.row()
            .add("dynamic fan-in " + std::to_string(fan_in))
            .add(static_cast<long long>(cell.transistorCount))
            .add(formatSi(d.evalDelay, "s"))
            .add(formatSi(d.prechargeEnergy, "J"));
    }
    // Static comparison points.
    {
        const auto inv = factory.inverter(cells::InverterKind::PseudoE);
        const auto nand2 = factory.nand(2);
        const auto nand3 = factory.nand(3);
        table.row().add("pseudo-E inv").add(
            static_cast<long long>(inv.transistorCount))
            .add("-").add("-");
        table.row().add("pseudo-E nand2").add(
            static_cast<long long>(nand2.transistorCount))
            .add("-").add("-");
        table.row().add("pseudo-E nand3").add(
            static_cast<long long>(nand3.transistorCount))
            .add("-").add("-");
    }
    table.render(std::cout);
    session.setPoints(static_cast<std::int64_t>(table.numRows()));

    const double droop = measureDroop(factory);
    std::printf("\ndynamic-node droop over a 50 ms hold: %.2f V "
                "(sets the minimum refresh/clock rate)\n", droop);
    std::printf("\nPaper claim check: fan-in-2 dynamic gate uses 3 "
                "devices vs 6 for static pseudo-E (half), evaluates "
                "through a single drive device, and pays a precharge "
                "energy every cycle plus a leakage-limited hold "
                "time.\n");
    return 0;
}
