/**
 * @file
 * The perf flight recorder front-end: runs the registered scenario
 * suite (every layer of the paper flow), prints a timing/counter
 * table, and writes the canonical schema-versioned BENCH_*.json
 * report that perf_diff and scripts/perf_gate.sh compare against.
 *
 * Usage:
 *   perf_suite [--reps N] [--warmup N] [--filter SUBSTR]
 *              [--out FILE.json] [--ingest FOOTERS.txt] [--list]
 *              [--profile] [--profile-dir DIR]
 *
 * --profile runs the sampling profiler across each scenario's timed
 * reps and writes one `PROF_<scenario>.folded` collapsed-stack file
 * per scenario (under --profile-dir, default cwd), ready for
 * flamegraph.pl / speedscope.
 *
 * Environment:
 *   OTFT_BENCH_REPS, OTFT_BENCH_WARMUP  defaults for --reps/--warmup
 *                                       (flags take precedence)
 *   OTFT_PROFILE_PERIOD_US, OTFT_PROFILE_TOPN
 *                        sampling period / report rows for --profile
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "scenarios.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/perf_report.hpp"
#include "util/table.hpp"

using namespace otft;

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: perf_suite [--reps N] [--warmup N] [--filter SUBSTR]\n"
        "                  [--out FILE.json] [--ingest FOOTERS.txt]\n"
        "                  [--list] [--profile] [--profile-dir DIR]\n");
}

std::uint64_t
parseCount(const char *text, const char *what)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0')
        fatal("perf_suite: ", what, " expects a count, got '", text,
              "'");
    return static_cast<std::uint64_t>(v);
}

std::uint64_t
envCount(const char *name, std::uint64_t fallback)
{
    const char *env = std::getenv(name);
    return env ? parseCount(env, name) : fallback;
}

void
printResults(const std::vector<perf::ScenarioResult> &results)
{
    Table table({"scenario", "reps", "min", "median", "MAD", "p95",
                 "points", "counters"});
    for (const auto &r : results) {
        table.row()
            .add(r.name)
            .add(static_cast<long long>(r.timing.reps))
            .add(formatSi(r.timing.minS, "s"))
            .add(formatSi(r.timing.medianS, "s"))
            .add(formatSi(r.timing.madS, "s"))
            .add(formatSi(r.timing.p95S, "s"))
            .add(static_cast<long long>(r.points))
            .add(static_cast<long long>(r.counters.size()));
    }
    table.render(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    cli::Session session("perf_suite", argc, argv);

    perf::SuiteOptions options;
    options.reps = envCount("OTFT_BENCH_REPS", options.reps);
    options.warmup = envCount("OTFT_BENCH_WARMUP", options.warmup);
    options.profilePeriodUs = envCount("OTFT_PROFILE_PERIOD_US",
                                       options.profilePeriodUs);
    options.profileTopN = static_cast<int>(envCount(
        "OTFT_PROFILE_TOPN",
        static_cast<std::uint64_t>(options.profileTopN)));
    std::string out_path;
    std::string ingest_path;
    bool list_only = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (std::strcmp(arg, "--reps") == 0 && has_value) {
            options.reps = parseCount(argv[++i], "--reps");
        } else if (std::strcmp(arg, "--warmup") == 0 && has_value) {
            options.warmup = parseCount(argv[++i], "--warmup");
        } else if (std::strcmp(arg, "--filter") == 0 && has_value) {
            options.filter = argv[++i];
        } else if (std::strcmp(arg, "--out") == 0 && has_value) {
            out_path = argv[++i];
        } else if (std::strcmp(arg, "--ingest") == 0 && has_value) {
            ingest_path = argv[++i];
        } else if (std::strcmp(arg, "--profile") == 0) {
            options.profile = true;
        } else if (std::strcmp(arg, "--profile-dir") == 0 &&
                   has_value) {
            options.profileDir = argv[++i];
        } else if (std::strcmp(arg, "--list") == 0) {
            list_only = true;
        } else {
            usage();
            return 2;
        }
    }
    if (options.reps == 0)
        fatal("perf_suite: --reps must be >= 1");

    perf::ScenarioSuite suite;
    bench::registerAllScenarios(suite);

    if (list_only) {
        Table table({"scenario", "layer", "description"});
        for (const auto &s : suite.scenarios())
            table.row().add(s.name).add(s.layer).add(s.description);
        table.render(std::cout);
        return 0;
    }

    perf::BenchReport report;
    report.reps = options.reps;
    report.warmup = options.warmup;
    report.env = perf::currentEnvironment();
    report.scenarios = suite.run(options);
    if (report.scenarios.empty())
        fatal("perf_suite: no scenario matches filter '",
              options.filter, "'");

    if (!ingest_path.empty()) {
        std::ifstream is(ingest_path);
        if (!is)
            fatal("perf_suite: cannot read ", ingest_path);
        const auto footers = perf::ingestFooters(is);
        inform("ingested ", footers.size(), " bench footer(s) from ",
               ingest_path);
        report.scenarios.insert(report.scenarios.end(),
                                footers.begin(), footers.end());
    }

    printResults(report.scenarios);

    if (!out_path.empty()) {
        std::ofstream os(out_path);
        if (!os)
            fatal("perf_suite: cannot write ", out_path);
        perf::writeReport(report, os);
        if (!os)
            fatal("perf_suite: write to ", out_path, " failed");
        inform("wrote ", out_path);
    } else {
        perf::writeReport(report, std::cout);
    }
    return 0;
}
