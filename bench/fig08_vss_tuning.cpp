/**
 * @file
 * Paper Fig. 8: switching threshold vs VSS for the pseudo-E inverter
 * at VDD = 5 V.
 *
 * The paper finds a linear relationship VM = 0.22 * VSS + 5.76 over
 * VSS in [-20, -10] V and picks VSS = -15 V (about VM = VDD/2). This
 * bench sweeps VSS, fits the line, and reports the chosen VSS for a
 * centered switching threshold.
 */

#include <cstdio>
#include <iostream>

#include "cells/topologies.hpp"
#include "cells/vtc.hpp"
#include "util/stats.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace otft;

int
main(int argc, char **argv)
{
    cli::Session session("fig08_vss_tuning", argc, argv,
                         cli::Footer::On);
    std::printf("Fig. 8 — pseudo-E switching threshold vs VSS "
                "(VDD = 5 V)\n\n");

    const std::vector<double> vss_points = {-20.0, -17.5, -15.0,
                                            -12.5, -10.0};
    std::vector<double> vms;

    Table table({"VSS (V)", "VM (V)", "max gain", "VOH (V)"});
    for (double vss : vss_points) {
        cells::SupplyConfig supply{5.0, vss};
        cells::CellFactory factory(device::Level61Params{},
                                   cells::CellSizing{}, supply);
        cells::BuiltCell cell =
            factory.inverter(cells::InverterKind::PseudoE);
        cells::VtcAnalyzer analyzer(121);
        const auto r = analyzer.analyze(cell);
        vms.push_back(r.vm);
        table.row().add(vss, 3).add(r.vm, 3).add(r.maxGain, 3).add(
            r.voh, 3);
    }
    table.render(std::cout);
    session.setPoints(static_cast<std::int64_t>(table.numRows()));

    const LineFit fit = fitLine(vss_points, vms);
    std::printf("\nlinear fit: VM = %.3f * VSS + %.2f (r^2 = %.3f)\n",
                fit.slope, fit.intercept, fit.r2);
    std::printf("paper:      VM = 0.22 * VSS + 5.76\n");
    if (fit.slope != 0.0) {
        std::printf("VSS for VM = VDD/2: %.1f V (paper: -14.8 V, "
                    "rounded to -15 V)\n", fit.solveFor(2.5));
    }
    return 0;
}
