/**
 * @file
 * Extension (paper Secs. 2 & 7): "more advanced architectural
 * techniques such as using massive parallelism could even be
 * harnessed to help close the fundamental organic-silicon performance
 * gap."
 *
 * At a fixed organic area budget, compare one big core (wide and/or
 * deep) against many copies of a small core on throughput-parallel
 * work. Organic's cheap static discipline is per-area, so the
 * many-small-cores point wins decisively on throughput per area —
 * the quantitative case for the paper's parallelism remark.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "core/explorer.hpp"
#include "liberty/characterizer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace otft;

int
main(int argc, char **argv)
{
    cli::Session session("ext_parallelism", argc, argv,
                         cli::Footer::On);
    std::printf("Extension — parallel small organic cores vs one big "
                "core\n\n");
    const auto organic = liberty::cachedOrganicLibrary();
    core::ExplorerConfig config;
    config.instructions = 50000;
    core::ArchExplorer explorer(organic, config);

    // Candidate building blocks.
    std::vector<std::pair<const char *, arch::CoreConfig>> designs;
    designs.emplace_back("small (fe1/be3, 9st)",
                         arch::baselineConfig());
    {
        auto wide = arch::baselineConfig();
        wide.fetchWidth = 4;
        wide.aluPipes = 4;
        designs.emplace_back("wide (fe4/be6, 9st)", wide);
    }
    {
        auto deep = arch::baselineConfig();
        for (int cut = 0; cut < 4; ++cut)
            deep = explorer.synthesizer().deepen(deep);
        designs.emplace_back("deep (fe1/be3, 13st)", deep);
    }
    {
        auto big = arch::baselineConfig();
        big.fetchWidth = 4;
        big.aluPipes = 4;
        for (int cut = 0; cut < 4; ++cut)
            big = explorer.synthesizer().deepen(big);
        designs.emplace_back("wide+deep (fe4/be6, 13st)", big);
    }

    // Area budget: a sensing-array substrate worth four big cores.
    std::vector<core::DesignPoint> points;
    for (const auto &[name, cfg] : designs)
        points.push_back(explorer.evaluate(cfg));
    const double budget = 4.0 * points.back().timing.area;

    Table table({"design", "area (mm^2)", "copies in budget",
                 "perf/core", "aggregate throughput",
                 "throughput/cm^2", "vs big-core array"});
    const double big_density =
        points.back().performance / points.back().timing.area;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &pt = points[i];
        const int copies =
            std::max(1, static_cast<int>(budget / pt.timing.area));
        const double aggregate =
            static_cast<double>(copies) * pt.performance;
        const double density = pt.performance / pt.timing.area;
        table.row()
            .add(designs[i].first)
            .add(pt.timing.area * 1e6, 3)
            .add(static_cast<long long>(copies))
            .add(pt.performance, 4)
            .add(aggregate, 4)
            .add(density * 1e-4, 4)
            .add(density / big_density, 3);
    }
    table.render(std::cout);
    session.setPoints(static_cast<std::int64_t>(points.size()));

    std::printf("\nReading: per unit of (large, cheap) organic "
                "substrate, arrays of narrow-but-deep cores deliver "
                "the most throughput — widening a single core buys "
                "the least. Parallelism over simple deep tiles, not "
                "monolithic width, is how organic closes the gap "
                "the paper describes.\n");
    return 0;
}
